open Nfsg_sim

let test_clock_starts_at_zero () =
  let eng = Engine.create () in
  Alcotest.(check int) "t=0" 0 (Engine.now eng)

let test_delay_advances_clock () =
  let eng = Engine.create () in
  let finished = ref (-1) in
  Engine.spawn eng (fun () ->
      Engine.delay (Time.ms 5);
      finished := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "5ms" (Time.ms 5) !finished

let test_sequential_delays () =
  let eng = Engine.create () in
  let times = ref [] in
  Engine.spawn eng (fun () ->
      Engine.delay (Time.us 10);
      times := Engine.now eng :: !times;
      Engine.delay (Time.us 20);
      times := Engine.now eng :: !times);
  Engine.run eng;
  Alcotest.(check (list int)) "10us then 30us" [ Time.us 30; Time.us 10 ] !times

let test_same_instant_fifo () =
  let eng = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng (fun () -> order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "spawn order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_interleaving_deterministic () =
  let run () =
    let eng = Engine.create () in
    let log = Buffer.create 64 in
    Engine.spawn eng (fun () ->
        for _ = 1 to 3 do
          Engine.delay (Time.us 2);
          Buffer.add_char log 'a'
        done);
    Engine.spawn eng (fun () ->
        for _ = 1 to 3 do
          Engine.delay (Time.us 3);
          Buffer.add_char log 'b'
        done);
    Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "reproducible" (run ()) (run ());
  (* a fires at 2,4,6us; b at 3,6,9us; at t=6 b's event was scheduled
     first (at t=3) so it runs first. *)
  Alcotest.(check string) "expected interleave" "ababab" (run ())

let test_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 10 do
        Engine.delay (Time.ms 1);
        incr hits
      done);
  Engine.run ~until:(Time.of_ms_f 3.5) eng;
  Alcotest.(check int) "3 events by 3.5ms" 3 !hits;
  Alcotest.(check int) "clock parked at until" (Time.of_ms_f 3.5) (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "rest completes on resume" 10 !hits

let test_schedule_callback () =
  let eng = Engine.create () in
  let fired = ref (-1) in
  Engine.schedule eng ~after:(Time.ms 7) (fun () -> fired := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "at 7ms" (Time.ms 7) !fired

let test_timer_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let tm = Engine.timer eng ~after:(Time.ms 5) (fun () -> fired := true) in
  Engine.schedule eng ~after:(Time.ms 1) (fun () ->
      Alcotest.(check bool) "cancel succeeds" true (Engine.cancel tm));
  Engine.run eng;
  Alcotest.(check bool) "never fired" false !fired;
  Alcotest.(check bool) "second cancel fails" false (Engine.cancel tm)

let test_timer_fires_then_cancel_fails () =
  let eng = Engine.create () in
  let fired = ref false in
  let tm = Engine.timer eng ~after:(Time.ms 1) (fun () -> fired := true) in
  Engine.run eng;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check bool) "cancel after fire" false (Engine.cancel tm)

let test_suspend_wake () =
  let eng = Engine.create () in
  let wake_ref = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend (fun wake -> wake_ref := Some wake) in
      got := v);
  Engine.spawn eng (fun () ->
      Engine.delay (Time.ms 2);
      match !wake_ref with Some wake -> wake 42 | None -> Alcotest.fail "no waker");
  Engine.run eng;
  Alcotest.(check int) "woken with value" 42 !got

let test_double_wake_rejected () =
  let eng = Engine.create () in
  let boom = ref false in
  Engine.spawn eng (fun () ->
      ignore
        (Engine.suspend (fun wake ->
             wake 1;
             try wake 2 with Invalid_argument _ -> boom := true)
          : int));
  Engine.run eng;
  Alcotest.(check bool) "second wake rejected" true !boom

let test_not_in_process () =
  Alcotest.check_raises "delay outside process" Engine.Not_in_process (fun () ->
      Engine.delay (Time.ms 1))

let test_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Engine.run eng)

let test_suspended_count () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Engine.delay (Time.ms 10));
  Engine.spawn eng (fun () -> ignore (Engine.suspend (fun _ -> ()) : unit));
  Engine.run ~until:(Time.ms 1) eng;
  Alcotest.(check int) "two parked" 2 (Engine.suspended_count eng);
  Engine.run eng;
  Alcotest.(check int) "one stuck forever" 1 (Engine.suspended_count eng)

let test_yield_requeues () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      log := "a1" :: !log;
      Engine.yield ();
      log := "a2" :: !log);
  Engine.spawn eng (fun () -> log := "b" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "b runs between yields" [ "a1"; "b"; "a2" ] (List.rev !log)

let test_nested_spawn () =
  let eng = Engine.create () in
  let depth = ref 0 in
  let rec spawn_chain n =
    if n > 0 then
      Engine.spawn eng (fun () ->
          Engine.delay (Time.us 1);
          incr depth;
          spawn_chain (n - 1))
  in
  spawn_chain 50;
  Engine.run eng;
  Alcotest.(check int) "all 50 ran" 50 !depth

let suite =
  [
    Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
    Alcotest.test_case "sequential delays accumulate" `Quick test_sequential_delays;
    Alcotest.test_case "same-instant events run FIFO" `Quick test_same_instant_fifo;
    Alcotest.test_case "interleaving is deterministic" `Quick test_interleaving_deterministic;
    Alcotest.test_case "run ~until pauses and resumes" `Quick test_run_until;
    Alcotest.test_case "schedule runs a callback" `Quick test_schedule_callback;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "cancel after firing fails" `Quick test_timer_fires_then_cancel_fails;
    Alcotest.test_case "suspend/wake passes a value" `Quick test_suspend_wake;
    Alcotest.test_case "waking twice is rejected" `Quick test_double_wake_rejected;
    Alcotest.test_case "blocking outside a process raises" `Quick test_not_in_process;
    Alcotest.test_case "process exception aborts run" `Quick test_exception_propagates;
    Alcotest.test_case "suspended_count tracks parked procs" `Quick test_suspended_count;
    Alcotest.test_case "yield requeues behind peers" `Quick test_yield_requeues;
    Alcotest.test_case "spawn from inside a process" `Quick test_nested_spawn;
  ]
