(* Client-model behaviour: biod hand-off, blocking flow control,
   sync-on-close, block coalescing. *)

open Testbed
module Server = Nfsg_core.Server
module Time = Nfsg_sim.Time
module Engine = Nfsg_sim.Engine

let cfg = Server.default_config

let test_full_blocks_go_to_wire () =
  let rig = make ~config:cfg ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "w" in
      let f = Client.open_file rig.client fh in
      (* 4 app writes of 2K fill one 8K block: exactly one wire write. *)
      for i = 0 to 3 do
        Client.write f ~off:(i * 2048) (Bytes.make 2048 'x')
      done;
      Client.close f;
      (* Four 2K writes fill exactly one 8K cache block. *)
      Alcotest.(check int) "one wire write" 1 (Client.wire_writes rig.client))

let test_partial_tail_flushed_on_close () =
  let rig = make ~config:cfg ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "tail" in
      let f = Client.open_file rig.client fh in
      Client.write f ~off:0 (Bytes.make 3000 't');
      Alcotest.(check int) "partial stays cached" 0 (Client.wire_writes rig.client);
      Client.close f;
      Alcotest.(check int) "flushed at close" 1 (Client.wire_writes rig.client);
      let a = Client.getattr rig.client fh in
      Alcotest.(check int) "server saw all bytes" 3000 a.Proto.size)

let test_biods_overlap_wire_time () =
  (* With biods, the application finishes writing (not counting close)
     far sooner than the wire completes; with 0 biods every write
     blocks. Compare the time to generate N blocks. *)
  let gen_time biods =
    let rig = make ~config:cfg ~biods () in
    run rig (fun () ->
        let fh, _ = Client.create_file rig.client (root rig) "b" in
        let f = Client.open_file rig.client fh in
        let t0 = Engine.now rig.eng in
        for i = 0 to 3 do
          Client.write f ~off:(i * 8192) (Bytes.make 8192 'x')
        done;
        let gen = Engine.now rig.eng - t0 in
        Client.close f;
        gen)
  in
  let with_biods = gen_time 8 and without = gen_time 0 in
  if with_biods * 5 > without then
    Alcotest.failf "biods do not overlap: with=%dns without=%dns" with_biods without

let test_non_sequential_flushes () =
  let rig = make ~config:cfg ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "seek" in
      let f = Client.open_file rig.client fh in
      Client.write f ~off:0 (Bytes.make 1000 'a');
      (* Jump: previous partial block must be pushed out. *)
      Client.write f ~off:100_000 (Bytes.make 1000 'b');
      Client.close f;
      Alcotest.(check int) "two wire writes" 2 (Client.wire_writes rig.client);
      let back = Client.read rig.client fh ~off:100_000 ~len:1000 in
      Alcotest.(check bytes) "second chunk" (Bytes.make 1000 'b') back)

let test_nospc_surfaces_at_close () =
  (* Tiny filesystem: asynchronous biod writes hit NFSERR_NOSPC; the
     error must surface at close() (the paper's sync-on-close
     rationale). *)
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let small_geom = { (Disk.rz26 ~capacity:(2 * 1024 * 1024) ()) with Disk.track_bytes = 256 * 1024 } in
  let device = Disk.create eng small_geom in
  let server = Server.make eng ~segment ~addr:"server" ~device cfg in
  let csock = Socket.create segment ~addr:"client" () in
  let rpc = Rpc_client.create eng ~sock:csock ~server:"server" () in
  let client = Client.create eng ~rpc ~biods:4 () in
  let got_nospc = ref false in
  Engine.spawn eng ~name:"driver" (fun () ->
      let fh, _ = Client.create_file client (Server.root_fh server) "huge" in
      let f = Client.open_file client fh in
      (try
         for i = 0 to 511 do
           Client.write f ~off:(i * 8192) (Bytes.make 8192 'z')
         done;
         Client.close f
       with Client.Error Proto.NFSERR_NOSPC -> got_nospc := true);
      ());
  Engine.run eng;
  Alcotest.(check bool) "ENOSPC surfaced" true !got_nospc

let test_app_chunks_smaller_than_block () =
  let rig = make ~config:cfg ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "chunks" in
      let total = 100_000 in
      let _ = write_file rig fh ~total ~app_chunk:1000 () in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "1000-byte app writes intact" (expect_pattern ~total ~seed:7) back;
      (* 100_000 bytes = 12 full blocks + tail: 13 wire writes. *)
      Alcotest.(check int) "coalesced into 13 wire writes" 13 (Client.wire_writes rig.client))

let test_read_spans_blocks () =
  let rig = make ~config:cfg ~biods:4 () in
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "read" in
      let total = 3 * 8192 in
      let _ = write_file rig fh ~total () in
      let back = Client.read rig.client fh ~off:5000 ~len:10_000 in
      let expect = Bytes.sub (expect_pattern ~total ~seed:7) 5000 10_000 in
      Alcotest.(check bytes) "mid-file span" expect back)

let suite =
  [
    Alcotest.test_case "full blocks go to the wire" `Quick test_full_blocks_go_to_wire;
    Alcotest.test_case "partial tail flushed on close" `Quick test_partial_tail_flushed_on_close;
    Alcotest.test_case "biods overlap wire time" `Quick test_biods_overlap_wire_time;
    Alcotest.test_case "non-sequential write flushes" `Quick test_non_sequential_flushes;
    Alcotest.test_case "ENOSPC surfaces at close" `Quick test_nospc_surfaces_at_close;
    Alcotest.test_case "small app writes coalesce" `Quick test_app_chunks_smaller_than_block;
    Alcotest.test_case "read spans blocks" `Quick test_read_spans_blocks;
  ]
