(* Whole-stack integration scenarios beyond single features. *)

open Testbed
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module Fs = Nfsg_ufs.Fs
module Engine = Nfsg_sim.Engine
module Time = Nfsg_sim.Time

let test_mixed_ops_one_session () =
  (* A little "shell session": mkdir, create files, write, rename,
     read back, remove — all over the wire with gathering on. *)
  let rig = make ~biods:4 () in
  run rig (fun () ->
      let c = rig.client in
      let r = root rig in
      let proj, _ = Client.mkdir c r "project" in
      let src, _ = Client.create_file c proj "draft.txt" in
      let f = Client.open_file c src in
      Client.write f ~off:0 (Bytes.of_string "chapter one\n");
      Client.close f;
      Client.rename c ~from_dir:proj ~from_name:"draft.txt" ~to_dir:proj ~to_name:"final.txt";
      let final, a = Client.lookup c proj "final.txt" in
      Alcotest.(check int) "size survived rename" 12 a.Proto.size;
      Alcotest.(check string) "content" "chapter one\n"
        (Bytes.to_string (Client.read c final ~off:0 ~len:12));
      Client.remove c proj "final.txt";
      Client.rmdir c r "project";
      Alcotest.(check int) "root empty" 0 (List.length (Client.readdir c r)))

let test_interleaved_writers_same_file () =
  (* Two client hosts interleave writes to DIFFERENT regions of one
     file; both regions must be intact and gathering must never mix up
     replies. *)
  let rig = make ~biods:4 () in
  let sock2 = Socket.create rig.segment ~addr:"client2" () in
  let rpc2 = Rpc_client.create rig.eng ~sock:sock2 ~server:"server" () in
  let client2 = Client.create rig.eng ~rpc:rpc2 ~biods:4 () in
  let fh_box = ref None in
  let c2_done = ref false in
  Nfsg_sim.Engine.spawn rig.eng ~name:"writer2" (fun () ->
      (* Wait for client 1 to create the file. *)
      let rec wait () =
        match !fh_box with
        | Some fh -> fh
        | None ->
            Nfsg_sim.Engine.delay (Time.ms 5);
            wait ()
      in
      let fh = wait () in
      let f = Client.open_file client2 fh in
      for i = 0 to 15 do
        Client.write f ~off:((32 + i) * 8192) (Bytes.make 8192 'B')
      done;
      Client.close f;
      c2_done := true);
  run rig (fun () ->
      let fh, _ = Client.create_file rig.client (root rig) "shared" in
      fh_box := Some fh;
      let f = Client.open_file rig.client fh in
      for i = 0 to 15 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 'A')
      done;
      Client.close f;
      (* Drain writer2 before verifying. *)
      while not !c2_done do
        Nfsg_sim.Engine.delay (Time.ms 10)
      done;
      let region1 = Client.read rig.client fh ~off:0 ~len:(16 * 8192) in
      let region2 = Client.read rig.client fh ~off:(32 * 8192) ~len:(16 * 8192) in
      Alcotest.(check bytes) "A region" (Bytes.make (16 * 8192) 'A') region1;
      Alcotest.(check bytes) "B region" (Bytes.make (16 * 8192) 'B') region2)

let test_many_small_files () =
  let rig = make ~biods:4 () in
  run rig (fun () ->
      let c = rig.client in
      let r = root rig in
      for i = 1 to 40 do
        let fh, _ = Client.create_file c r (Printf.sprintf "f%02d" i) in
        let f = Client.open_file c fh in
        Client.write f ~off:0 (Bytes.make (i * 100) (Char.chr (64 + (i mod 26))));
        Client.close f
      done;
      Alcotest.(check int) "40 entries" 40 (List.length (Client.readdir c r));
      (* Spot check contents and sizes. *)
      List.iter
        (fun i ->
          let fh, a = Client.lookup c r (Printf.sprintf "f%02d" i) in
          Alcotest.(check int) "size" (i * 100) a.Proto.size;
          let b = Client.read c fh ~off:0 ~len:(i * 100) in
          Alcotest.(check char) "content" (Char.chr (64 + (i mod 26))) (Bytes.get b 0))
        [ 1; 17; 40 ];
      match Fs.check (Server.fs rig.server) with
      | Ok () -> ()
      | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es))

let test_packet_loss_end_to_end () =
  (* 5% datagram loss: retransmission + dupcache must keep the file
     byte-perfect, with gathering enabled. *)
  let eng = Engine.create () in
  let segment = Segment.create eng { Segment.fddi with Segment.loss_prob = 0.05 } in
  let disk = Nfsg_disk.Disk.create eng disk_geometry in
  let server = Server.make eng ~segment ~addr:"server" ~device:disk Server.default_config in
  let sock = Socket.create segment ~addr:"client" () in
  let params = { Rpc_client.default_params with Rpc_client.initial_rto = Time.ms 200; min_rto = Time.ms 200 } in
  let rpc = Rpc_client.create eng ~sock ~server:"server" ~params () in
  let client = Client.create eng ~rpc ~biods:4 () in
  let checked = ref false in
  Engine.spawn eng ~name:"driver" (fun () ->
      let fh, _ = Client.create_file client (Server.root_fh server) "lossy" in
      let f = Client.open_file client fh in
      let total = 32 * 8192 in
      for i = 0 to 31 do
        Client.write f ~off:(i * 8192)
          (Bytes.init 8192 (fun j -> Char.chr (((i * 8192) + j + 7) mod 251)))
      done;
      Client.close f;
      let back = Client.read client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "intact despite loss" (expect_pattern ~total ~seed:7) back;
      checked := true);
  Engine.run eng;
  Alcotest.(check bool) "completed" true !checked;
  Alcotest.(check bool) "losses actually happened" true (Segment.datagrams_lost segment > 0);
  Alcotest.(check bool) "retransmissions happened" true (Rpc_client.retransmissions rpc > 0)

let test_duplicate_drop_rescue_no_orphans () =
  (* Heavy loss on a gathering server: duplicates get dropped while
     batches are queued. Every write must still be answered (close()
     returns) and no handles may leak. *)
  let eng = Engine.create () in
  let segment = Segment.create eng { Segment.fddi with Segment.loss_prob = 0.15 } in
  let disk = Nfsg_disk.Disk.create eng disk_geometry in
  let server = Server.make eng ~segment ~addr:"server" ~device:disk Server.default_config in
  let sock = Socket.create segment ~addr:"client" () in
  let params =
    { Rpc_client.default_params with Rpc_client.initial_rto = Time.ms 150; min_rto = Time.ms 150; max_attempts = 60 }
  in
  let rpc = Rpc_client.create eng ~sock ~server:"server" ~params () in
  let client = Client.create eng ~rpc ~biods:8 () in
  let finished = ref false in
  Engine.spawn eng ~name:"driver" (fun () ->
      let fh, _ = Client.create_file client (Server.root_fh server) "dups" in
      let f = Client.open_file client fh in
      for i = 0 to 63 do
        Client.write f ~off:(i * 8192) (Bytes.make 8192 (Char.chr (33 + (i mod 90))))
      done;
      Client.close f;
      finished := true);
  Engine.run eng;
  Alcotest.(check bool) "close returned (no orphaned writes)" true !finished;
  match Fs.check (Server.fs server) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es)

let test_socket_overflow_recovers () =
  (* Tiny server socket buffer: requests get dropped, clients
     retransmit, and the transfer still completes correctly. *)
  let eng = Engine.create () in
  let segment = Segment.create eng Segment.fddi in
  let disk = Nfsg_disk.Disk.create eng disk_geometry in
  let config =
    {
      Server.default_config with
      Server.rcvbuf = 3 * 8192;
      (* standard mode keeps every nfsd busy in synchronous disk I/O,
         so the burst really does pile up in the socket buffer *)
      write_layer = Write_layer.standard;
    }
  in
  let server = Server.make eng ~segment ~addr:"server" ~device:disk config in
  let sock = Socket.create segment ~addr:"client" () in
  let params = { Rpc_client.default_params with Rpc_client.initial_rto = Time.ms 300; min_rto = Time.ms 300 } in
  let rpc = Rpc_client.create eng ~sock ~server:"server" ~params () in
  let client = Client.create eng ~rpc ~biods:15 () in
  let ok = ref false in
  Engine.spawn eng ~name:"driver" (fun () ->
      let fh, _ = Client.create_file client (Server.root_fh server) "burst" in
      let f = Client.open_file client fh in
      let total = 32 * 8192 in
      for i = 0 to 31 do
        Client.write f ~off:(i * 8192)
          (Bytes.init 8192 (fun j -> Char.chr (((i * 8192) + j + 7) mod 251)))
      done;
      Client.close f;
      let back = Client.read client fh ~off:0 ~len:total in
      ok := Bytes.equal back (expect_pattern ~total ~seed:7));
  Engine.run eng;
  Alcotest.(check bool) "transfer correct" true !ok;
  Alcotest.(check bool) "server actually dropped requests" true
    (Socket.dropped (Server.socket server) > 0)

let test_gathering_plus_nvram_plus_stripe () =
  (* The full stack at once: gathering server over Prestoserve over a
     3-way stripe, write, verify, crash, recover, verify again. *)
  let rig = make ~accel:true ~spindles:3 ~biods:8 () in
  run rig (fun () ->
      let total = 64 * 8192 in
      let _ = write_file rig (fst (Client.create_file rig.client (root rig) "deep")) ~total () in
      let fh, _ = Client.lookup rig.client (root rig) "deep" in
      let back = Client.read rig.client fh ~off:0 ~len:total in
      Alcotest.(check bytes) "live read" (expect_pattern ~total ~seed:7) back;
      Server.crash rig.server;
      rig.device.Device.recover ();
      let fs2 = Fs.mount rig.eng rig.device in
      let f2 = Fs.lookup fs2 (Fs.root fs2) "deep" in
      Alcotest.(check bytes) "post-crash read" (expect_pattern ~total ~seed:7)
        (Fs.read fs2 f2 ~off:0 ~len:total))

let suite =
  [
    Alcotest.test_case "mixed-op session" `Quick test_mixed_ops_one_session;
    Alcotest.test_case "two writers, one file" `Quick test_interleaved_writers_same_file;
    Alcotest.test_case "many small files" `Quick test_many_small_files;
    Alcotest.test_case "packet loss end to end" `Quick test_packet_loss_end_to_end;
    Alcotest.test_case "duplicate drops never orphan" `Quick test_duplicate_drop_rescue_no_orphans;
    Alcotest.test_case "socket overflow recovers" `Quick test_socket_overflow_recovers;
    Alcotest.test_case "gathering + NVRAM + stripe + crash" `Quick test_gathering_plus_nvram_plus_stripe;
  ]
