open Nfsg_sim
open Nfsg_net

let run_sim body =
  let eng = Engine.create () in
  let r = body eng in
  Engine.run eng;
  r

let test_delivery () =
  let got = ref None in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let a = Socket.create seg ~addr:"client" () in
         let b = Socket.create seg ~addr:"server" () in
         Engine.spawn eng (fun () -> got := Some (Socket.recv b));
         Engine.spawn eng (fun () -> Socket.send a ~dst:"server" (Bytes.of_string "ping"))));
  match !got with
  | Some ("client", payload) -> Alcotest.(check string) "payload" "ping" (Bytes.to_string payload)
  | _ -> Alcotest.fail "not delivered"

let test_fragment_count () =
  Alcotest.(check int) "8K over ethernet" 6 (Segment.fragments_of Segment.ethernet 8300);
  Alcotest.(check int) "8K over fddi" 2 (Segment.fragments_of Segment.fddi 8300);
  Alcotest.(check int) "tiny" 1 (Segment.fragments_of Segment.ethernet 100)

let test_wire_time_scales () =
  let small = Segment.wire_time Segment.ethernet 1000 in
  let big = Segment.wire_time Segment.ethernet 8000 in
  if big <= small then Alcotest.fail "wire time not increasing";
  (* 8000 bytes at 10 Mb/s is 6.4ms of payload alone. *)
  if big < Time.of_ms_f 6.4 then Alcotest.failf "too fast: %dns" big;
  let fddi = Segment.wire_time Segment.fddi 8000 in
  if fddi * 5 > big then Alcotest.fail "FDDI not ~10x faster"

let test_latency_applied () =
  let t = ref 0 in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let a = Socket.create seg ~addr:"a" () in
         let b = Socket.create seg ~addr:"b" () in
         Engine.spawn eng (fun () ->
             ignore (Socket.recv b);
             t := Engine.now eng);
         Engine.spawn eng (fun () -> Socket.send a ~dst:"b" (Bytes.make 1000 'x'))));
  let expect = Segment.wire_time Segment.ethernet 1000 + Segment.ethernet.Segment.latency in
  Alcotest.(check int) "wire + latency" expect !t

let test_shared_medium_serialises () =
  (* Two senders to two receivers: second datagram arrives one
     occupancy later — the medium is shared. *)
  let times = ref [] in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let s1 = Socket.create seg ~addr:"s1" () in
         let s2 = Socket.create seg ~addr:"s2" () in
         let r1 = Socket.create seg ~addr:"r1" () in
         let r2 = Socket.create seg ~addr:"r2" () in
         Engine.spawn eng (fun () ->
             ignore (Socket.recv r1);
             times := ("r1", Engine.now eng) :: !times);
         Engine.spawn eng (fun () ->
             ignore (Socket.recv r2);
             times := ("r2", Engine.now eng) :: !times);
         Engine.spawn eng (fun () -> Socket.send s1 ~dst:"r1" (Bytes.make 4000 'a'));
         Engine.spawn eng (fun () -> Socket.send s2 ~dst:"r2" (Bytes.make 4000 'b'))));
  let t1 = List.assoc "r1" !times and t2 = List.assoc "r2" !times in
  let occupancy = Segment.wire_time Segment.ethernet 4000 in
  Alcotest.(check int) "second delayed by one occupancy" occupancy (t2 - t1)

let test_buffer_overflow_drops () =
  let received = ref 0 in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let a = Socket.create seg ~addr:"a" () in
         (* Room for only two 1000-byte datagrams; nobody recv()s. *)
         let b = Socket.create seg ~addr:"b" ~rcvbuf:2048 () in
         for _ = 1 to 5 do
           Socket.send a ~dst:"b" (Bytes.make 1000 'x')
         done;
         Engine.schedule eng ~after:(Time.sec 1) (fun () ->
             received := Socket.pending b;
             Alcotest.(check int) "3 dropped" 3 (Socket.dropped b))));
  Alcotest.(check int) "2 queued" 2 !received

let test_scan_does_not_consume () =
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.fddi in
         let a = Socket.create seg ~addr:"a" () in
         let b = Socket.create seg ~addr:"b" () in
         Socket.send a ~dst:"b" (Bytes.of_string "WRITE file7");
         Engine.schedule eng ~after:(Time.sec 1) (fun () ->
             let hit =
               Socket.scan b (fun ~src:_ payload ->
                   Bytes.length payload > 5 && Bytes.sub_string payload 0 5 = "WRITE")
             in
             Alcotest.(check bool) "found" true hit;
             let miss = Socket.scan b (fun ~src:_ _ -> false) in
             Alcotest.(check bool) "predicate honoured" false miss;
             Alcotest.(check int) "still queued" 1 (Socket.pending b))))

let test_loss_injection () =
  let received = ref 0 in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng { Segment.fddi with Segment.loss_prob = 0.5 } in
         let a = Socket.create seg ~addr:"a" () in
         let b = Socket.create seg ~addr:"b" () in
         for _ = 1 to 200 do
           Socket.send a ~dst:"b" (Bytes.make 100 'x')
         done;
         Engine.schedule eng ~after:(Time.sec 5) (fun () ->
             received := Socket.pending b;
             if Segment.datagrams_lost seg = 0 then Alcotest.fail "no loss injected")));
  if !received < 60 || !received > 140 then Alcotest.failf "%d of 200 at p=0.5?" !received

let test_rx_fragment_hook () =
  let frags = ref 0 in
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let a = Socket.create seg ~addr:"a" () in
         let _b =
           Socket.create seg ~addr:"b" ~on_rx_fragment:(fun ~bytes:_ -> incr frags) ()
         in
         Socket.send a ~dst:"b" (Bytes.make 8300 'x')));
  Alcotest.(check int) "6 fragments charged" 6 !frags

let test_unknown_destination_vanishes () =
  ignore
    (run_sim (fun eng ->
         let seg = Segment.create eng Segment.ethernet in
         let a = Socket.create seg ~addr:"a" () in
         Socket.send a ~dst:"ghost" (Bytes.of_string "hello")));
  (* Nothing to assert beyond "no crash". *)
  ()

let suite =
  [
    Alcotest.test_case "datagram delivery" `Quick test_delivery;
    Alcotest.test_case "fragmentation counts" `Quick test_fragment_count;
    Alcotest.test_case "wire time scales with size" `Quick test_wire_time_scales;
    Alcotest.test_case "latency applied after wire time" `Quick test_latency_applied;
    Alcotest.test_case "shared medium serialises senders" `Quick test_shared_medium_serialises;
    Alcotest.test_case "full socket buffer drops" `Quick test_buffer_overflow_drops;
    Alcotest.test_case "scan sees without consuming" `Quick test_scan_does_not_consume;
    Alcotest.test_case "random loss injection" `Quick test_loss_injection;
    Alcotest.test_case "per-fragment receive hook" `Quick test_rx_fragment_hook;
    Alcotest.test_case "unknown destination dropped" `Quick test_unknown_destination_vanishes;
  ]
