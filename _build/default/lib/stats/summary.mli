(** Running summary of a stream of observations: count, sum, extrema,
    mean and variance (Welford), without storing samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val variance : t -> float
(** Population variance; 0 for fewer than two samples. *)

val stddev : t -> float
val reset : t -> unit
val merge : t -> t -> t
(** [merge a b] is a fresh summary equivalent to observing both
    streams. *)
