(** Timeline event recorder, used to regenerate the paper's Figure 1
    (packet/disk activity of a standard vs a gathering server). *)

type t

val create : ?enabled:bool -> Nfsg_sim.Engine.t -> t
(** Disabled recorders make {!emit} a no-op so traced code can run in
    benchmarks at full speed. *)

val enabled : t -> bool

val emit : t -> actor:string -> string -> unit
(** Record an event for [actor] at the current virtual time. *)

val events : t -> (Nfsg_sim.Time.t * string * string) list
(** All recorded events, oldest first. *)

val render : t -> string
(** Text timeline: one line per event, ["  t=+12.34ms  actor  event"],
    with time relative to the first event. *)

val clear : t -> unit
