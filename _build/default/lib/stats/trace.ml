open Nfsg_sim

type t = {
  eng : Engine.t;
  enabled : bool;
  mutable entries : (Time.t * string * string) list; (* newest first *)
}

let create ?(enabled = true) eng = { eng; enabled; entries = [] }
let enabled t = t.enabled

let emit t ~actor event =
  if t.enabled then t.entries <- (Engine.now t.eng, actor, event) :: t.entries

let events t = List.rev t.entries

let render t =
  match events t with
  | [] -> "(empty trace)\n"
  | (t0, _, _) :: _ as evs ->
      let buf = Buffer.create 1024 in
      let actor_width =
        List.fold_left (fun w (_, a, _) -> Stdlib.max w (String.length a)) 0 evs
      in
      List.iter
        (fun (tm, actor, event) ->
          Buffer.add_string buf
            (Printf.sprintf "  t=+%8.3fms  %-*s  %s\n"
               (Time.to_ms_f (tm - t0))
               actor_width actor event))
        evs;
      Buffer.contents buf

let clear t = t.entries <- []
