type t = {
  least : float;
  growth : float;
  counts : int array;
  mutable n : int;
  mutable total : float;
}

let create ?(least = 1.0) ?(growth = 1.25) ?(buckets = 128) () =
  if least <= 0.0 then invalid_arg "Histogram.create: least must be positive";
  if growth <= 1.0 then invalid_arg "Histogram.create: growth must exceed 1";
  if buckets < 2 then invalid_arg "Histogram.create: need at least 2 buckets";
  { least; growth; counts = Array.make buckets 0; n = 0; total = 0.0 }

let bucket_of h x =
  if x < h.least then 0
  else
    let i = 1 + int_of_float (log (x /. h.least) /. log h.growth) in
    Stdlib.min i (Array.length h.counts - 1)

let upper_edge h i = if i = 0 then h.least else h.least *. (h.growth ** float_of_int i)

let add h x =
  let i = bucket_of h x in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.total <- h.total +. x

let count h = h.n
let mean h = if h.n = 0 then 0.0 else h.total /. float_of_int h.n

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let target = int_of_float (Float.round (q *. float_of_int (h.n - 1))) in
    let seen = ref 0 and result = ref (upper_edge h (Array.length h.counts - 1)) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen > target then begin
             result := upper_edge h i;
             raise Exit
           end)
         h.counts
     with Exit -> ());
    !result
  end

let median h = quantile h 0.5
let p99 h = quantile h 0.99

let reset h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.n <- 0;
  h.total <- 0.0
