type t = {
  mutable n : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
  mutable mean_acc : float;
  mutable m2 : float;
}

let create () =
  { n = 0; total = 0.0; mn = infinity; mx = neg_infinity; mean_acc = 0.0; m2 = 0.0 }

let add s x =
  s.n <- s.n + 1;
  s.total <- s.total +. x;
  if x < s.mn then s.mn <- x;
  if x > s.mx then s.mx <- x;
  let delta = x -. s.mean_acc in
  s.mean_acc <- s.mean_acc +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean_acc))

let count s = s.n
let sum s = s.total
let mean s = if s.n = 0 then 0.0 else s.mean_acc
let min s = s.mn
let max s = s.mx
let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int s.n
let stddev s = sqrt (variance s)

let reset s =
  s.n <- 0;
  s.total <- 0.0;
  s.mn <- infinity;
  s.mx <- neg_infinity;
  s.mean_acc <- 0.0;
  s.m2 <- 0.0

let merge a b =
  let s = create () in
  if a.n + b.n > 0 then begin
    s.n <- a.n + b.n;
    s.total <- a.total +. b.total;
    s.mn <- Float.min a.mn b.mn;
    s.mx <- Float.max a.mx b.mx;
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = na +. nb in
    let delta = b.mean_acc -. a.mean_acc in
    s.mean_acc <- ((na *. a.mean_acc) +. (nb *. b.mean_acc)) /. n;
    s.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n)
  end;
  s
