lib/stats/histogram.mli:
