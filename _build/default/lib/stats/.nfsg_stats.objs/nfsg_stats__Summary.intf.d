lib/stats/summary.mli:
