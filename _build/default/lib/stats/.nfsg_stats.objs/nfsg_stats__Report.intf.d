lib/stats/report.mli:
