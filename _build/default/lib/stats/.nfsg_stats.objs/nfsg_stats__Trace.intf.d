lib/stats/trace.mli: Nfsg_sim
