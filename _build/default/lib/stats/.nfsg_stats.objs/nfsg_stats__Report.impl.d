lib/stats/report.ml: Array Buffer Float List Printf Stdlib String
