lib/stats/trace.ml: Buffer Engine List Nfsg_sim Printf Stdlib String Time
