(** Log-bucketed histogram for latency-like quantities.

    Buckets grow geometrically from [least] with ratio [growth], so a
    histogram spanning nanoseconds to seconds needs only a few dozen
    buckets while keeping relative error bounded by [growth - 1]. *)

type t

val create : ?least:float -> ?growth:float -> ?buckets:int -> unit -> t
(** Defaults: [least = 1.0], [growth = 1.25], [buckets = 128]. Values
    below [least] land in bucket 0; values beyond the last bucket are
    clamped into it. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile h q] for [q] in [\[0,1\]], estimated as the upper edge of
    the bucket containing the [q]-th sample. 0 when empty. *)

val median : t -> float
val p99 : t -> float
val reset : t -> unit
