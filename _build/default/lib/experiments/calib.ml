open Nfsg_sim

type net = Ethernet | Fddi

let segment_params = function
  | Ethernet -> Nfsg_net.Segment.ethernet
  | Fddi -> Nfsg_net.Segment.fddi

(* RZ26-class spindle, tuned so a standard server serves ~74 x 8K
   synchronous writes/sec and a 64K cluster costs ~45-50 ms — the
   implied physics of the paper's Tables 1 and 3 (see EXPERIMENTS.md). *)
let disk_geometry =
  {
    (Nfsg_disk.Disk.rz26 ~capacity:(96 * 1024 * 1024) ()) with
    Nfsg_disk.Disk.track_bytes = 400 * 1024;
    media_rate = 2.6e6;
    seek_single = Time.of_ms_f 1.2;
    seek_full = Time.of_ms_f 21.0;
    command_overhead = Time.of_us_f 300.0;
  }

let nvram_params = Nfsg_disk.Nvram.default_params

(* Request-path costs, calibrated against the paper's CPU-utilisation
   columns. Packet reassembly per transport unit is the expensive part
   (the paper's Ethernet rows burn twice the CPU of FDDI at equal
   throughput); the remaining per-request costs are modest. The
   Ethernet tables ran on a DEC 3400, the FDDI tables on a roughly
   twice-as-fast DEC 3800. *)
let base_costs =
  {
    Nfsg_core.Cpu_model.rx_fragment = Time.of_us_f 300.0;
    rpc_decode = Time.of_us_f 110.0;
    rpc_encode = Time.of_us_f 95.0;
    op_base = Time.of_us_f 80.0;
    ufs_trip = Time.of_us_f 250.0;
    driver_transaction = Time.of_us_f 550.0;
  }

let cpu_costs = function
  | Ethernet -> base_costs
  | Fddi -> Nfsg_core.Cpu_model.scale base_costs 0.65

let procrastinate = function
  | Ethernet -> Time.of_ms_f 8.0
  | Fddi -> Time.of_ms_f 5.0

let file_size = 10 * 1024 * 1024
