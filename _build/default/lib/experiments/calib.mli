(** Calibration constants shared by every experiment.

    One place holds the modelled hardware: an RZ26-class spindle, a
    Prestoserve-class NVRAM board, DEC 3400-class CPU costs, and the
    paper's procrastination intervals (8 ms Ethernet, 5 ms FDDI,
    section 6.6). EXPERIMENTS.md records how well the shapes match the
    paper under these constants; change them here and every table and
    figure moves together. *)

type net = Ethernet | Fddi

val segment_params : net -> Nfsg_net.Segment.params
val disk_geometry : Nfsg_disk.Disk.geometry
val nvram_params : Nfsg_disk.Nvram.params

val cpu_costs : net -> Nfsg_core.Cpu_model.t
(** The paper's Ethernet tables ran on a DEC 3400 server, the FDDI
    tables on a roughly twice-as-fast DEC 3800; packet reassembly per
    transport unit dominates the Ethernet CPU story. *)

val procrastinate : net -> Nfsg_sim.Time.t

val file_size : int
(** The 10 MB copy size from the paper's Results section. *)
