(** The Results-section experiment: one 10 MB sequential file copy per
    cell, swept over client biod counts, with and without write
    gathering — the generator behind Tables 1 through 6. *)

type cell = {
  client_kb_s : float;
  cpu_pct : float;
  disk_kb_s : float;
  disk_trans_s : float;
  mean_batch : float;  (** gathered writes per metadata update *)
}

val run_cell : spec:Rig.spec -> biods:int -> ?total:int -> unit -> cell
(** A fresh world, one client with [biods] biods, one 10 MB (default)
    file copy, measured around the copy. Verifies byte fidelity and
    raises [Failure] if the file reads back wrong. *)

val table :
  title:string ->
  net:Calib.net ->
  accel:bool ->
  spindles:int ->
  biods:int list ->
  ?total:int ->
  unit ->
  Nfsg_stats.Report.t
(** The paper's table shape: a "Without Write Gathering" section and a
    "With Write Gathering" section, each with client speed, server CPU
    utilisation, disk KB/sec and disk trans/sec rows. *)
