lib/experiments/experiments.ml: Buffer Bytes Calib Engine Filecopy Gc List Nfsg_core Nfsg_disk Nfsg_nfs Nfsg_sim Nfsg_stats Nfsg_workload Printf Rig String Time
