lib/experiments/rig.mli: Calib Nfsg_core Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_sim Nfsg_stats
