lib/experiments/calib.mli: Nfsg_core Nfsg_disk Nfsg_net Nfsg_sim
