lib/experiments/calib.ml: Nfsg_core Nfsg_disk Nfsg_net Nfsg_sim Time
