lib/experiments/filecopy.ml: Calib Gc List Nfsg_core Nfsg_nfs Nfsg_stats Nfsg_workload Rig
