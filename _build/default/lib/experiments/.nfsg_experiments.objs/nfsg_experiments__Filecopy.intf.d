lib/experiments/filecopy.mli: Calib Nfsg_stats Rig
