lib/experiments/experiments.mli: Nfsg_stats
