lib/experiments/rig.ml: Array Calib Engine Nfsg_core Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_stats Printf Resource Stdlib Time
