module Report = Nfsg_stats.Report
module Server = Nfsg_core.Server
module Write_layer = Nfsg_core.Write_layer
module File_writer = Nfsg_workload.File_writer

type cell = {
  client_kb_s : float;
  cpu_pct : float;
  disk_kb_s : float;
  disk_trans_s : float;
  mean_batch : float;
}

let run_cell ~spec ~biods ?(total = Calib.file_size) () =
  (* Reclaim the previous cell's simulated world before allocating
     another set of 96 MB platters. *)
  Gc.full_major ();
  let rig = Rig.make spec in
  Rig.run rig (fun () ->
      let client = Rig.new_client rig ~biods "client" in
      let result, window =
        Rig.measure rig (fun () ->
            File_writer.run rig.Rig.eng client ~dir:(Rig.root rig) ~name:"copy.dat" ~total ())
      in
      (* Fidelity check: the simulated stack must be carrying real
         bytes, not just timing. *)
      let fh, _ = Nfsg_nfs.Client.lookup client (Rig.root rig) "copy.dat" in
      if not (File_writer.verify client ~fh ~total ~seed:7) then
        failwith "filecopy: read-back mismatch";
      {
        client_kb_s = result.File_writer.kb_per_sec;
        cpu_pct = window.Rig.cpu_pct;
        disk_kb_s = window.Rig.disk_kb_s;
        disk_trans_s = window.Rig.disk_trans_s;
        mean_batch = Write_layer.mean_batch_size (Server.write_layer rig.Rig.server);
      })

let table ~title ~net ~accel ~spindles ~biods ?total () =
  let columns = List.map string_of_int biods in
  let report = Report.create ~title ~columns in
  let section gathering label =
    Report.add_section report label;
    let cells =
      List.map
        (fun b ->
          let spec = { Rig.default_spec with Rig.net; accel; spindles; gathering } in
          run_cell ~spec ~biods:b ?total ())
        biods
    in
    Report.add_row report "client write speed (KB/sec)" (List.map (fun c -> c.client_kb_s) cells);
    Report.add_row report "server cpu util. (%)" (List.map (fun c -> c.cpu_pct) cells);
    Report.add_row report "server disk (KB/sec)" (List.map (fun c -> c.disk_kb_s) cells);
    Report.add_row report "server disk (trans/sec)" (List.map (fun c -> c.disk_trans_s) cells);
    if gathering then
      Report.add_row report "writes per metadata update" (List.map (fun c -> c.mean_batch) cells)
  in
  section false "Without Write Gathering";
  section true "With Write Gathering";
  report
