open Nfsg_sim

type state = In_flight | Done of Bytes.t * Time.t

type entry = { mutable state : state; mutable last_touch : Time.t }

type verdict = New | In_progress | Replay of Bytes.t

type t = {
  eng : Engine.t;
  capacity : int;
  ttl : Time.t;
  table : (string * int, entry) Hashtbl.t;
  mutable drops : int;
  mutable replays : int;
}

let create eng ?(capacity = 512) ?(ttl = Time.sec 6) () =
  { eng; capacity; ttl; table = Hashtbl.create 256; drops = 0; replays = 0 }

let entries t = Hashtbl.length t.table
let drops t = t.drops
let replays t = t.replays

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    (* Evict the least recently touched completed entry; in-flight
       entries are pinned. *)
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match e.state with
        | In_flight -> ()
        | Done _ -> (
            match !victim with
            | Some (_, ve) when ve.last_touch <= e.last_touch -> ()
            | _ -> victim := Some (k, e)))
      t.table;
    match !victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()
  end

let admit t ~client ~xid =
  let key = (client, xid) in
  let now = Engine.now t.eng in
  match Hashtbl.find_opt t.table key with
  | Some e -> (
      e.last_touch <- now;
      match e.state with
      | In_flight ->
          t.drops <- t.drops + 1;
          In_progress
      | Done (reply, at) ->
          if now - at <= t.ttl then begin
            t.replays <- t.replays + 1;
            Replay reply
          end
          else begin
            e.state <- In_flight;
            New
          end)
  | None ->
      evict_if_full t;
      Hashtbl.replace t.table key { state = In_flight; last_touch = now };
      New

let complete t ~client ~xid reply =
  match Hashtbl.find_opt t.table (client, xid) with
  | Some e ->
      e.state <- Done (reply, Engine.now t.eng);
      e.last_touch <- Engine.now t.eng
  | None -> ()

let forget t ~client ~xid = Hashtbl.remove t.table (client, xid)
