(** Duplicate request cache ([JUSZ89]: "Improving the Performance and
    Correctness of an NFS Server").

    Keyed by (client address, xid). A request seen while the same
    request is {e in progress} is dropped; a request whose reply was
    sent recently gets the cached reply retransmitted instead of being
    re-executed — essential for non-idempotent operations under client
    retransmission. *)

type t

type verdict =
  | New  (** execute it (now marked in-progress) *)
  | In_progress  (** drop: an nfsd is already on it *)
  | Replay of Bytes.t  (** retransmit this cached reply *)

val create : Nfsg_sim.Engine.t -> ?capacity:int -> ?ttl:Nfsg_sim.Time.t -> unit -> t
(** [capacity] bounds entries (default 512, LRU eviction); [ttl] is how
    long a completed reply stays replayable (default 6 s). *)

val admit : t -> client:string -> xid:int -> verdict

val complete : t -> client:string -> xid:int -> Bytes.t -> unit
(** Record the encoded reply for future replays. *)

val forget : t -> client:string -> xid:int -> unit
(** Drop an in-progress entry without a reply (e.g. dispatch failed
    before a reply existed). *)

val entries : t -> int
val drops : t -> int
(** Requests dropped as in-progress duplicates. *)

val replays : t -> int
