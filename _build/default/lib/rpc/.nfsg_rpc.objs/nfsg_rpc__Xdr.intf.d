lib/rpc/xdr.mli: Bytes
