lib/rpc/rpc_client.ml: Bytes Engine Hashtbl Nfsg_net Nfsg_sim Rpc Stdlib Time Xdr
