lib/rpc/rpc_client.mli: Bytes Nfsg_net Nfsg_sim Rpc
