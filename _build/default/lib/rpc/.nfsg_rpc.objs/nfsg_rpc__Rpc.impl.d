lib/rpc/rpc.ml: Bytes Int32 Printf Xdr
