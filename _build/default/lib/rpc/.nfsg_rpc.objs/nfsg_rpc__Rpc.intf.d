lib/rpc/rpc.mli: Bytes
