lib/rpc/svc.mli: Bytes Dupcache Nfsg_net Nfsg_sim Rpc
