lib/rpc/xdr.ml: Buffer Bytes Int32 Int64 Printf String
