lib/rpc/dupcache.ml: Bytes Engine Hashtbl Nfsg_sim Time
