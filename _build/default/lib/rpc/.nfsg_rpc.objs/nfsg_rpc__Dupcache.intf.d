lib/rpc/dupcache.mli: Bytes Nfsg_sim
