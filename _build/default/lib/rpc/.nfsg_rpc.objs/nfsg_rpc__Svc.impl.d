lib/rpc/svc.ml: Bytes Dupcache Engine Nfsg_net Nfsg_sim Printf Queue Rpc Xdr
