lib/net/segment.mli: Bytes Nfsg_sim
