lib/net/socket.ml: Bytes Nfsg_sim Segment
