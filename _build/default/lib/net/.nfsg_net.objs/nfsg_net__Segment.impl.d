lib/net/segment.ml: Bytes Engine Hashtbl Nfsg_sim Rng Squeue Stdlib Time
