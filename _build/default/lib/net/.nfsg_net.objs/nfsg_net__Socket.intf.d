lib/net/socket.mli: Bytes Segment
