(** Shared network segment (an Ethernet or an FDDI ring).

    All stations on a segment share one medium: transmissions are
    serialised in FIFO order, so a busy network delays everyone — the
    paper's "network interface capacity" limit. A datagram is
    fragmented into MTU-sized transport units; its wire time covers
    payload, per-fragment header bytes and a per-fragment fixed gap
    (preamble / token rotation), and it is delivered whole to the
    destination socket one propagation latency after the last fragment
    leaves the wire.

    Delivery is into a bounded socket buffer; datagrams arriving at a
    full buffer are dropped, exactly like the fixed-size NFS socket
    buffer of a reference-port server ("if the queue fills then some
    incoming requests may be lost"). Random loss can be injected on
    top. *)

type params = {
  bandwidth : float;  (** bits per second *)
  mtu : int;  (** payload bytes per fragment *)
  frag_overhead_bytes : int;  (** wire header bytes per fragment *)
  frag_gap : Nfsg_sim.Time.t;  (** fixed medium time per fragment *)
  latency : Nfsg_sim.Time.t;  (** propagation + interface latency *)
  loss_prob : float;  (** independent drop probability per datagram *)
}

val ethernet : params
(** 10 Mb/s, MTU 1500 — the paper's private Ethernet. *)

val fddi : params
(** 100 Mb/s, MTU 4352 — the paper's FDDI ring. *)

type t

val create : Nfsg_sim.Engine.t -> ?seed:int -> params -> t
val params : t -> params
val engine : t -> Nfsg_sim.Engine.t

val fragments_of : params -> int -> int
(** Number of transport units a datagram of the given payload size
    needs. *)

val wire_time : params -> int -> Nfsg_sim.Time.t
(** Medium occupancy for one datagram of the given payload size. *)

(** {1 Statistics} *)

val datagrams_sent : t -> int
val datagrams_lost : t -> int
(** Lost to injected random loss (socket-buffer drops are counted at
    the socket). *)

val bytes_sent : t -> int
val busy_time : t -> Nfsg_sim.Time.t

(**/**)

(* Internal plumbing shared with Socket. *)

type station = {
  addr : string;
  deliver : src:string -> Bytes.t -> unit;
  rx_fragment : bytes:int -> unit;
}

val attach : t -> station -> unit
val detach : t -> string -> unit
val transmit : t -> src:string -> dst:string -> Bytes.t -> unit
