open Nfsg_sim

type params = {
  bandwidth : float;
  mtu : int;
  frag_overhead_bytes : int;
  frag_gap : Time.t;
  latency : Time.t;
  loss_prob : float;
}

let ethernet =
  {
    bandwidth = 10e6;
    mtu = 1500;
    frag_overhead_bytes = 26;
    frag_gap = Time.of_us_f 15.0;
    latency = Time.of_us_f 400.0;
    loss_prob = 0.0;
  }

let fddi =
  {
    bandwidth = 100e6;
    mtu = 4352;
    frag_overhead_bytes = 28;
    frag_gap = Time.of_us_f 4.0;
    latency = Time.of_us_f 120.0;
    loss_prob = 0.0;
  }

type station = {
  addr : string;
  deliver : src:string -> Bytes.t -> unit;
  rx_fragment : bytes:int -> unit;
}

type job = { src : string; dst : string; payload : Bytes.t }

type t = {
  eng : Engine.t;
  p : params;
  rng : Rng.t;
  stations : (string, station) Hashtbl.t;
  queue : job Squeue.t;
  mutable sent : int;
  mutable lost : int;
  mutable bytes : int;
  mutable busy : Time.t;
}

let params t = t.p
let engine t = t.eng
let datagrams_sent t = t.sent
let datagrams_lost t = t.lost
let bytes_sent t = t.bytes
let busy_time t = t.busy

let fragments_of p size = Stdlib.max 1 ((size + p.mtu - 1) / p.mtu)

let wire_time p size =
  let nfrags = fragments_of p size in
  let wire_bytes = size + (nfrags * p.frag_overhead_bytes) in
  Time.of_sec_f (float_of_int (wire_bytes * 8) /. p.bandwidth) + (nfrags * p.frag_gap)

let daemon t () =
  let rec loop () =
    let { src; dst; payload } = Squeue.get t.queue in
    let size = Bytes.length payload in
    let occupancy = wire_time t.p size in
    Engine.delay occupancy;
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + size;
    t.busy <- t.busy + occupancy;
    if not (Rng.bool t.rng t.p.loss_prob) then begin
      let nfrags = fragments_of t.p size in
      Engine.schedule t.eng ~after:t.p.latency (fun () ->
          match Hashtbl.find_opt t.stations dst with
          | None -> () (* no such station: datagram vanishes *)
          | Some station ->
              (* Receiver-side per-fragment cost (reassembly). *)
              for _ = 1 to nfrags do
                station.rx_fragment ~bytes:(Stdlib.min size t.p.mtu)
              done;
              station.deliver ~src payload)
    end
    else t.lost <- t.lost + 1;
    loop ()
  in
  loop ()

let create eng ?(seed = 0x5e9) p =
  let t =
    {
      eng;
      p;
      rng = Rng.create seed;
      stations = Hashtbl.create 8;
      queue = Squeue.create ();
      sent = 0;
      lost = 0;
      bytes = 0;
      busy = Time.zero;
    }
  in
  Engine.spawn eng ~name:"segment" (daemon t);
  t

let attach t station =
  if Hashtbl.mem t.stations station.addr then
    invalid_arg ("Segment.attach: duplicate address " ^ station.addr);
  Hashtbl.replace t.stations station.addr station

let detach t addr = Hashtbl.remove t.stations addr
let transmit t ~src ~dst payload = Squeue.put t.queue { src; dst; payload }
