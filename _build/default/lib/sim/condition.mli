(** Condition variable for simulation processes.

    Unlike POSIX condition variables there is no associated mutex:
    simulation processes never run concurrently within an instant, so
    the usual lost-wakeup race cannot occur between testing a predicate
    and calling {!wait}. The idiomatic use is still a re-check loop:
    [while not (pred ()) do Condition.wait c done]. *)

type t

val create : unit -> t

val wait : t -> unit
(** Park the calling process until {!signal} or {!broadcast}. *)

val wait_timeout : Engine.t -> t -> Time.t -> bool
(** [wait_timeout eng c d] waits at most [d]; returns [true] if
    signalled, [false] on timeout. A signal and a timeout at the same
    instant resolves in favour of whichever event was scheduled
    first. *)

val signal : t -> unit
(** Wake the longest-waiting process, if any. *)

val broadcast : t -> unit
(** Wake every waiting process. *)

val waiters : t -> int
(** Number of processes currently parked. *)
