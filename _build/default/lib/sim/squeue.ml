type 'a t = { items : 'a Queue.t; getters : ('a -> unit) Queue.t }

let create () = { items = Queue.create (); getters = Queue.create () }

let put q v =
  match Queue.take_opt q.getters with
  | Some wake -> wake v
  | None -> Queue.add v q.items

let get q =
  match Queue.take_opt q.items with
  | Some v -> v
  | None -> Engine.suspend (fun wake -> Queue.add wake q.getters)

let try_get q = Queue.take_opt q.items
let length q = Queue.length q.items
let iter f q = Queue.iter f q.items
