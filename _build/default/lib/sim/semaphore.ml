type t = { name : string; mutable permits : int; waiting : (unit -> unit) Queue.t }

let create ?(name = "sem") n =
  if n < 0 then invalid_arg (name ^ ": negative permit count");
  { name; permits = n; waiting = Queue.create () }

let available s = s.permits
let waiters s = Queue.length s.waiting

let acquire s =
  if s.permits > 0 then s.permits <- s.permits - 1
  else Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) s.waiting)

let try_acquire s =
  if s.permits > 0 then begin
    s.permits <- s.permits - 1;
    true
  end
  else false

let release s =
  match Queue.take_opt s.waiting with
  | Some wake -> wake () (* permit passes directly to the waiter *)
  | None -> s.permits <- s.permits + 1
