type waiter = { mutable wake : bool -> unit; mutable live : bool }

type t = { q : waiter Queue.t }

let create () = { q = Queue.create () }
let waiters c = Queue.fold (fun n w -> if w.live then n + 1 else n) 0 c.q

let wait c =
  Engine.suspend (fun wake ->
      Queue.add { wake = (fun _ -> wake ()); live = true } c.q)

let wait_timeout eng c d =
  Engine.suspend (fun wake ->
      let w = { wake; live = true } in
      let tm =
        Engine.timer eng ~after:d (fun () ->
            if w.live then begin
              w.live <- false;
              wake false
            end)
      in
      (* A later signal must also cancel the pending timeout. *)
      w.wake <-
        (fun signalled ->
          ignore (Engine.cancel tm);
          wake signalled);
      Queue.add w c.q)

let rec signal c =
  match Queue.take_opt c.q with
  | None -> ()
  | Some w ->
      if w.live then begin
        w.live <- false;
        w.wake true
      end
      else signal c

let broadcast c =
  let rec drain () =
    match Queue.take_opt c.q with
    | None -> ()
    | Some w ->
        if w.live then begin
          w.live <- false;
          w.wake true
        end;
        drain ()
  in
  drain ()
