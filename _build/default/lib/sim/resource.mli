(** Service station: a resource with [capacity] identical slots and a
    FIFO queue, with cumulative busy-time accounting.

    Models anything that serves one request at a time per slot — the
    server CPU, a disk mechanism, a network segment. Utilisation over a
    measurement window is computed by snapshotting {!busy_time} at the
    window edges. *)

type t

val create : Engine.t -> ?capacity:int -> string -> t
(** [create eng name] has capacity 1 unless overridden. *)

val name : t -> string
val capacity : t -> int

val use : t -> Time.t -> unit
(** [use r d] blocks for a free slot (FIFO among waiters), occupies it
    for [d] of virtual time, then releases it. *)

val acquire : t -> unit
(** Take a slot without timing; pair with {!release}. Busy time between
    acquire and release is {e not} accounted automatically — use
    {!charge} for explicit accounting, or prefer {!use}. *)

val release : t -> unit

val charge : t -> Time.t -> unit
(** Add to the busy-time account without holding a slot (for costs that
    are modelled as instantaneous but should count as load). *)

val busy_time : t -> Time.t
(** Cumulative busy nanoseconds across all slots since creation. *)

val jobs : t -> int
(** Number of completed {!use} calls. *)

val queue_length : t -> int
(** Requests currently waiting for a slot. *)

val in_service : t -> int
(** Slots currently occupied. *)

val utilization : t -> busy0:Time.t -> t0:Time.t -> float
(** [utilization r ~busy0 ~t0] is the fraction of slot-capacity used
    since the snapshot [(busy0, t0)] taken with {!busy_time} and
    [Engine.now]. *)
