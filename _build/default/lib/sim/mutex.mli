(** Sleep lock (the "vnode sleep lock" of the paper, section 6.2).

    A FIFO mutex for simulation processes: contenders are granted the
    lock in arrival order. The holder is tracked so misuse (unlocking a
    mutex one does not hold) fails loudly. *)

type t

val create : ?name:string -> unit -> t

val lock : t -> unit
(** Block until the lock is acquired. Not reentrant: a process locking
    a mutex it holds deadlocks, as in a kernel. *)

val try_lock : t -> bool
(** Acquire without blocking; [true] on success. *)

val unlock : t -> unit
(** Release and hand the lock to the longest-waiting contender. Raises
    [Invalid_argument] if the calling process is not the holder. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f] holding [m], releasing on any exit. *)

val locked : t -> bool
val holder : t -> string option
val contenders : t -> int
