type t = {
  eng : Engine.t;
  name : string;
  capacity : int;
  mutable in_service : int;
  mutable busy : Time.t;
  mutable jobs : int;
  waiting : (unit -> unit) Queue.t;
}

let create eng ?(capacity = 1) name =
  if capacity <= 0 then invalid_arg (name ^ ": capacity must be positive");
  { eng; name; capacity; in_service = 0; busy = Time.zero; jobs = 0; waiting = Queue.create () }

let name r = r.name
let capacity r = r.capacity
let busy_time r = r.busy
let jobs r = r.jobs
let queue_length r = Queue.length r.waiting
let in_service r = r.in_service

let acquire r =
  if r.in_service < r.capacity then r.in_service <- r.in_service + 1
  else begin
    Engine.suspend (fun wake -> Queue.add (fun () -> wake ()) r.waiting);
    (* The releaser kept the slot count up across the hand-off. *)
    ()
  end

let release r =
  match Queue.take_opt r.waiting with
  | Some wake -> wake () (* slot passes directly to the next waiter *)
  | None -> r.in_service <- r.in_service - 1

let charge r d = r.busy <- r.busy + d

let use r d =
  acquire r;
  Engine.delay d;
  r.busy <- r.busy + d;
  r.jobs <- r.jobs + 1;
  release r

let utilization r ~busy0 ~t0 =
  let elapsed = Engine.now r.eng - t0 in
  if elapsed <= 0 then 0.0
  else float_of_int (r.busy - busy0) /. float_of_int (elapsed * r.capacity)
