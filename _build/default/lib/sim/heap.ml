type 'a entry = { key : int; seq : int; v : 'a }

type 'a t = { mutable arr : 'a entry option array; mutable len : int }

let create () = { arr = Array.make 16 None; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> invalid_arg "Heap.get: hole in heap"

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get h i) (get h parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less (get h l) (get h !smallest) then smallest := l;
  if r < h.len && less (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~key ~seq v =
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- Some { key; seq; v };
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h =
  if h.len = 0 then None
  else
    let e = get h 0 in
    Some (e.key, e.seq, e.v)

let pop h =
  if h.len = 0 then None
  else begin
    let e = get h 0 in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    Some (e.key, e.seq, e.v)
  end

let clear h =
  Array.fill h.arr 0 (Array.length h.arr) None;
  h.len <- 0
