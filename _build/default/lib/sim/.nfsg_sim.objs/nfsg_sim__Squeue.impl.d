lib/sim/squeue.ml: Engine Queue
