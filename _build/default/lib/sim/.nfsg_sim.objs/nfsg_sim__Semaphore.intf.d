lib/sim/semaphore.mli:
