lib/sim/condition.mli: Engine Time
