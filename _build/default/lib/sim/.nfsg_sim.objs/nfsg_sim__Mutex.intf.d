lib/sim/mutex.mli:
