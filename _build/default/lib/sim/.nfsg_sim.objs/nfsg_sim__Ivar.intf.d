lib/sim/ivar.mli:
