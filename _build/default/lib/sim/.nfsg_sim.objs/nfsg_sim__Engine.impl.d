lib/sim/engine.ml: Effect Heap Time
