lib/sim/mutex.ml: Engine Printf Queue
