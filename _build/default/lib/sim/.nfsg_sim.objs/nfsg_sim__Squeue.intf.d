lib/sim/squeue.mli:
