lib/sim/heap.mli:
