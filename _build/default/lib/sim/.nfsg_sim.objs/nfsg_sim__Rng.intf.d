lib/sim/rng.mli:
