type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let of_us_f u = int_of_float (Float.round (u *. 1e3))
let of_ms_f m = int_of_float (Float.round (m *. 1e6))
let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let to_us_f t = float_of_int t /. 1e3

let pp ppf t =
  let ft = float_of_int t in
  if t < 1_000 then Format.fprintf ppf "%dns" t
  else if t < 1_000_000 then Format.fprintf ppf "%.2fus" (ft /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf ppf "%.2fms" (ft /. 1e6)
  else Format.fprintf ppf "%.3fs" (ft /. 1e9)
