(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation. Integers keep the event queue exactly ordered and make
    runs bit-for-bit reproducible; 63-bit nanoseconds cover ~292 years,
    far beyond any experiment here. *)

type t = int
(** Nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] converts a duration in (possibly fractional) seconds,
    rounding to the nearest nanosecond. *)

val of_us_f : float -> t
(** [of_us_f u] converts fractional microseconds. *)

val of_ms_f : float -> t
(** [of_ms_f m] converts fractional milliseconds. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
