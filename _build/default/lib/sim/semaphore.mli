(** Counting semaphore with FIFO wakeups. *)

type t

val create : ?name:string -> int -> t
(** [create n] has [n] initial permits; [n >= 0]. *)

val acquire : t -> unit
(** Take one permit, blocking while none are available. *)

val try_acquire : t -> bool

val release : t -> unit
(** Return one permit, waking the longest-waiting acquirer if any. *)

val available : t -> int
val waiters : t -> int
