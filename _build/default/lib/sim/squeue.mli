(** Unbounded blocking FIFO queue between simulation processes. *)

type 'a t

val create : unit -> 'a t

val put : 'a t -> 'a -> unit
(** Enqueue; never blocks. Wakes one blocked {!get}ter. *)

val get : 'a t -> 'a
(** Dequeue, blocking the calling process while empty. Competing
    getters are served in arrival order. *)

val try_get : 'a t -> 'a option
val length : 'a t -> int
val iter : ('a -> unit) -> 'a t -> unit
(** Iterate over queued (not yet consumed) items, oldest first. *)
