type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 r =
  r.state <- Int64.add r.state golden_gamma;
  mix64 r.state

let split r = { state = bits64 r }

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 r) 2) in
  v mod bound

let float r =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 r) 11) in
  v *. 0x1p-53

let uniform r a b = a +. ((b -. a) *. float r)
let bool r p = float r < p

let exponential r mean =
  let u = float r in
  -.mean *. log1p (-.u)

let pick r arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int r (Array.length arr))

let weighted r choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights must sum to a positive value";
  let x = float r *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty choice list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 choices
