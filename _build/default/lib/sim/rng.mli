(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulation draws from an [Rng.t]
    seeded explicitly, so experiment runs are reproducible and
    independent streams can be split off for independent subsystems. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split r] derives an independent generator from [r], advancing
    [r]. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int r bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform r a b] is uniform in [\[a, b)]. *)

val bool : t -> float -> bool
(** [bool r p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential r mean] draws from an exponential distribution with
    the given mean (used for Poisson arrival processes). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted r choices] picks an element with probability
    proportional to its weight. Weights must be non-negative with a
    positive sum. *)
