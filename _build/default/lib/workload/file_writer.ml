open Nfsg_sim
module Client = Nfsg_nfs.Client

type result = { bytes : int; elapsed : Time.t; kb_per_sec : float; wire_writes : int }

let pattern ~total ~seed = Bytes.init total (fun i -> Char.chr ((i + seed) mod 251))

let mk_result eng ~t0 ~bytes ~wire_writes0 client =
  let elapsed = Engine.now eng - t0 in
  {
    bytes;
    elapsed;
    kb_per_sec =
      (if elapsed = 0 then 0.0
       else float_of_int bytes /. 1024.0 /. Time.to_sec_f elapsed);
    wire_writes = Client.wire_writes client - wire_writes0;
  }

let run eng client ~dir ~name ~total ?(app_chunk = 8192) ?(seed = 7) () =
  let fh, _ = Client.create_file client dir name in
  let f = Client.open_file client fh in
  let wire0 = Client.wire_writes client in
  let t0 = Engine.now eng in
  let pos = ref 0 in
  while !pos < total do
    let n = Stdlib.min app_chunk (total - !pos) in
    let chunk = Bytes.init n (fun i -> Char.chr ((!pos + i + seed) mod 251)) in
    Client.write f ~off:!pos chunk;
    pos := !pos + n
  done;
  Client.close f;
  mk_result eng ~t0 ~bytes:total ~wire_writes0:wire0 client

let run_random eng client ~dir ~name ~writes ~file_blocks ?(seed = 7) () =
  let fh, _ = Client.create_file client dir name in
  let f = Client.open_file client fh in
  let rng = Rng.create seed in
  let wire0 = Client.wire_writes client in
  let t0 = Engine.now eng in
  for _ = 1 to writes do
    let blk = Rng.int rng file_blocks in
    Client.write f ~off:(blk * 8192) (Bytes.make 8192 (Char.chr (33 + Rng.int rng 90)))
  done;
  Client.close f;
  mk_result eng ~t0 ~bytes:(writes * 8192) ~wire_writes0:wire0 client

let verify client ~fh ~total ~seed =
  let back = Client.read client fh ~off:0 ~len:total in
  Bytes.equal back (pattern ~total ~seed)
