(** Sequential file-copy workload: the paper's Results section
    experiment ("a 10MB file is written over private Ethernet and FDDI
    networks ... while varying the number of client biods"). *)

type result = {
  bytes : int;
  elapsed : Nfsg_sim.Time.t;  (** first write to close() completion *)
  kb_per_sec : float;
  wire_writes : int;
}

val run :
  Nfsg_sim.Engine.t ->
  Nfsg_nfs.Client.t ->
  dir:Nfsg_nfs.Proto.fh ->
  name:string ->
  total:int ->
  ?app_chunk:int ->
  ?seed:int ->
  unit ->
  result
(** Create [name] in [dir] and write [total] bytes sequentially in
    [app_chunk]-byte application writes (default 8192), then close.
    Must run inside a simulation process. *)

val run_random :
  Nfsg_sim.Engine.t ->
  Nfsg_nfs.Client.t ->
  dir:Nfsg_nfs.Proto.fh ->
  name:string ->
  writes:int ->
  file_blocks:int ->
  ?seed:int ->
  unit ->
  result
(** Random-access variant (paper section 6.11): [writes] 8 KB writes
    at uniformly random block offsets within a [file_blocks]-block
    file. *)

val verify :
  Nfsg_nfs.Client.t -> fh:Nfsg_nfs.Proto.fh -> total:int -> seed:int -> bool
(** Read the file back and compare against the deterministic pattern
    {!run} wrote. *)

val pattern : total:int -> seed:int -> Bytes.t
