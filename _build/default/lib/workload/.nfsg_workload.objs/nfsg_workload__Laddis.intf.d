lib/workload/laddis.mli: Nfsg_nfs Nfsg_sim
