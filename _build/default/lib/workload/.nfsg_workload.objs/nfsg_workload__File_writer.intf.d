lib/workload/file_writer.mli: Bytes Nfsg_nfs Nfsg_sim
