lib/workload/laddis.ml: Array Bytes Condition Engine List Nfsg_nfs Nfsg_sim Printf Rng Stdlib Time
