lib/workload/file_writer.ml: Bytes Char Engine Nfsg_nfs Nfsg_sim Rng Stdlib Time
