exception No_space

type t = { cache : Buffer_cache.t; sb : Layout.superblock; mutable rotor : int }

let create cache sb = { cache; sb; rotor = sb.Layout.data_start }

let locate a b =
  let bits_per_block = a.sb.Layout.bsize * 8 in
  (a.sb.Layout.bitmap_start + (b / bits_per_block), b mod bits_per_block)

let get_bit a b =
  let blk, bit = locate a b in
  let buf = Buffer_cache.get a.cache blk in
  Char.code (Bytes.get buf (bit / 8)) land (1 lsl (bit mod 8)) <> 0

let set_bit a b v =
  let blk, bit = locate a b in
  let buf = Buffer_cache.get a.cache blk in
  let byte = Char.code (Bytes.get buf (bit / 8)) in
  let byte' = if v then byte lor (1 lsl (bit mod 8)) else byte land lnot (1 lsl (bit mod 8)) in
  Bytes.set buf (bit / 8) (Char.chr byte');
  Buffer_cache.mark_dirty a.cache blk Buffer_cache.Metadata

let is_allocated = get_bit

let alloc a ?near () =
  let nblocks = a.sb.Layout.nblocks in
  let try_one b = if get_bit a b then None else Some b in
  let candidate =
    match near with
    | Some n when n + 1 < nblocks && n + 1 >= a.sb.Layout.data_start -> try_one (n + 1)
    | Some _ | None -> None
  in
  let found =
    match candidate with
    | Some b -> Some b
    | None ->
        (* Next-fit scan from the rotor, wrapping once. *)
        let span = nblocks - a.sb.Layout.data_start in
        let rec scan i =
          if i >= span then None
          else begin
            let b =
              a.sb.Layout.data_start + ((a.rotor - a.sb.Layout.data_start + i) mod span)
            in
            match try_one b with Some b -> Some b | None -> scan (i + 1)
          end
        in
        scan 0
  in
  match found with
  | None -> raise No_space
  | Some b ->
      set_bit a b true;
      a.rotor <- b + 1;
      if a.rotor >= nblocks then a.rotor <- a.sb.Layout.data_start;
      b

let free a b =
  if b < a.sb.Layout.data_start || b >= a.sb.Layout.nblocks then
    invalid_arg (Printf.sprintf "alloc: freeing non-data block %d" b);
  if not (get_bit a b) then invalid_arg (Printf.sprintf "alloc: double free of block %d" b);
  set_bit a b false

let allocated_in_data_area a =
  let n = ref 0 in
  for b = a.sb.Layout.data_start to a.sb.Layout.nblocks - 1 do
    if get_bit a b then incr n
  done;
  !n

let set_allocated a b = set_bit a b true

let clear_all_data_area a =
  for b = a.sb.Layout.data_start to a.sb.Layout.nblocks - 1 do
    if get_bit a b then set_bit a b false
  done
