let inode_size = 128
let nd_direct = 12
let magic = "NFSGUFS1"
let max_name_len = 255

type ftype = Free | Regular | Directory | Symlink

type superblock = {
  bsize : int;
  nblocks : int;
  ninodes : int;
  bitmap_start : int;
  bitmap_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  root_inum : int;
}

let ftype_to_int = function Free -> 0 | Regular -> 1 | Directory -> 2 | Symlink -> 3

let ftype_of_int = function
  | 0 -> Free
  | 1 -> Regular
  | 2 -> Directory
  | 3 -> Symlink
  | n -> failwith (Printf.sprintf "layout: bad ftype %d" n)

let make_superblock ~bsize ~capacity ~ninodes =
  if bsize < 512 || bsize land (bsize - 1) <> 0 then
    invalid_arg "layout: bsize must be a power of two >= 512";
  let nblocks = capacity / bsize in
  let bitmap_blocks = (nblocks + (bsize * 8) - 1) / (bsize * 8) in
  let inodes_per_block = bsize / inode_size in
  let itable_blocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let bitmap_start = 1 in
  let itable_start = bitmap_start + bitmap_blocks in
  let data_start = itable_start + itable_blocks in
  if data_start + 8 > nblocks then invalid_arg "layout: device too small";
  {
    bsize;
    nblocks;
    ninodes;
    bitmap_start;
    bitmap_blocks;
    itable_start;
    itable_blocks;
    data_start;
    root_inum = 1;
  }

let set32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF
let set64 b off v = Bytes.set_int64_be b off (Int64.of_int v)
let get64 b off = Int64.to_int (Bytes.get_int64_be b off)

let encode_superblock sb =
  let b = Bytes.make sb.bsize '\000' in
  Bytes.blit_string magic 0 b 0 8;
  set32 b 8 sb.bsize;
  set32 b 12 sb.nblocks;
  set32 b 16 sb.ninodes;
  set32 b 20 sb.bitmap_start;
  set32 b 24 sb.bitmap_blocks;
  set32 b 28 sb.itable_start;
  set32 b 32 sb.itable_blocks;
  set32 b 36 sb.data_start;
  set32 b 40 sb.root_inum;
  b

let decode_superblock b =
  if Bytes.length b < 44 then failwith "layout: superblock too short";
  if Bytes.sub_string b 0 8 <> magic then failwith "layout: bad superblock magic";
  let sb =
    {
      bsize = get32 b 8;
      nblocks = get32 b 12;
      ninodes = get32 b 16;
      bitmap_start = get32 b 20;
      bitmap_blocks = get32 b 24;
      itable_start = get32 b 28;
      itable_blocks = get32 b 32;
      data_start = get32 b 36;
      root_inum = get32 b 40;
    }
  in
  if sb.bsize < 512 || sb.nblocks <= 0 || sb.ninodes <= 0 then
    failwith "layout: implausible superblock";
  sb

type dinode = {
  ftype : ftype;
  nlink : int;
  size : int;
  mtime : int;
  atime : int;
  ctime : int;
  direct : int array;
  single_ind : int;
  double_ind : int;
  gen : int;
}

let zero_dinode =
  {
    ftype = Free;
    nlink = 0;
    size = 0;
    mtime = 0;
    atime = 0;
    ctime = 0;
    direct = Array.make nd_direct 0;
    single_ind = 0;
    double_ind = 0;
    gen = 0;
  }

let encode_dinode di =
  let b = Bytes.make inode_size '\000' in
  set32 b 0 (ftype_to_int di.ftype);
  set32 b 4 di.nlink;
  set64 b 8 di.size;
  set64 b 16 di.mtime;
  set64 b 24 di.atime;
  set64 b 32 di.ctime;
  Array.iteri (fun i p -> set32 b (40 + (4 * i)) p) di.direct;
  set32 b (40 + (4 * nd_direct)) di.single_ind;
  set32 b (44 + (4 * nd_direct)) di.double_ind;
  set32 b (48 + (4 * nd_direct)) di.gen;
  b

let decode_dinode b =
  if Bytes.length b < inode_size then failwith "layout: short inode";
  {
    ftype = ftype_of_int (get32 b 0);
    nlink = get32 b 4;
    size = get64 b 8;
    mtime = get64 b 16;
    atime = get64 b 24;
    ctime = get64 b 32;
    direct = Array.init nd_direct (fun i -> get32 b (40 + (4 * i)));
    single_ind = get32 b (40 + (4 * nd_direct));
    double_ind = get32 b (44 + (4 * nd_direct));
    gen = get32 b (48 + (4 * nd_direct));
  }

let inode_block sb inum =
  if inum < 1 || inum >= sb.ninodes then invalid_arg (Printf.sprintf "layout: bad inum %d" inum);
  let per_block = sb.bsize / inode_size in
  (sb.itable_start + (inum / per_block), inum mod per_block * inode_size)

let pointers_per_block sb = sb.bsize / 4

let max_file_blocks sb =
  let ppb = pointers_per_block sb in
  nd_direct + ppb + (ppb * ppb)

let get_pointer block i = get32 block (4 * i)
let set_pointer block i v = set32 block (4 * i) v

let encode_dirents entries =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, inum) ->
      let n = String.length name in
      if n = 0 || n > max_name_len then invalid_arg ("layout: bad name " ^ name);
      let b4 = Bytes.create 4 in
      set32 b4 0 inum;
      Buffer.add_bytes buf b4;
      let b2 = Bytes.create 2 in
      Bytes.set_uint16_be b2 0 n;
      Buffer.add_bytes buf b2;
      Buffer.add_string buf name;
      let pad = (4 - ((6 + n) mod 4)) mod 4 in
      Buffer.add_string buf (String.make pad '\000'))
    entries;
  Buffer.to_bytes buf

let decode_dirents b =
  let len = Bytes.length b in
  let rec go off acc =
    if off + 6 > len then List.rev acc
    else begin
      let inum = get32 b off in
      let n = Bytes.get_uint16_be b (off + 4) in
      if n = 0 || off + 6 + n > len then List.rev acc
      else begin
        let name = Bytes.sub_string b (off + 6) n in
        let pad = (4 - ((6 + n) mod 4)) mod 4 in
        go (off + 6 + n + pad) ((name, inum) :: acc)
      end
    end
  in
  go 0 []
