lib/ufs/layout.ml: Array Buffer Bytes Int32 Int64 List Printf String
