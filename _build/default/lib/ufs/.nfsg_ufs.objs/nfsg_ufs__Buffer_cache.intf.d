lib/ufs/buffer_cache.mli: Bytes Nfsg_disk
