lib/ufs/alloc.ml: Buffer_cache Bytes Char Layout Printf
