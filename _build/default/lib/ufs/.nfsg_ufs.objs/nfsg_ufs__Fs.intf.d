lib/ufs/fs.mli: Buffer_cache Bytes Layout Nfsg_disk Nfsg_sim
