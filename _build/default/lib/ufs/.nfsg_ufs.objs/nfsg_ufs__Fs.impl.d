lib/ufs/fs.ml: Alloc Array Buffer_cache Bytes Char Engine Hashtbl Layout List Mutex Nfsg_disk Nfsg_sim Option Printf Stdlib Time
