lib/ufs/layout.mli: Bytes
