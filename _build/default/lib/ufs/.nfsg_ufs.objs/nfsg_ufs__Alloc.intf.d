lib/ufs/alloc.mli: Buffer_cache Layout
