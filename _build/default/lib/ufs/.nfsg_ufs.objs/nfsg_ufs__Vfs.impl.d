lib/ufs/vfs.ml: Fs Layout List Nfsg_disk Nfsg_sim
