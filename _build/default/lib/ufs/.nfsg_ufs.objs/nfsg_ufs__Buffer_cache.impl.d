lib/ufs/buffer_cache.ml: Bytes Device Hashtbl List Nfsg_disk Option Printf Stdlib
