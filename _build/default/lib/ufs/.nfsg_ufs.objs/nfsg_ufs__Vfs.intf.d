lib/ufs/vfs.mli: Bytes Fs Layout Nfsg_sim
