(** Block allocator over the on-disk bitmap.

    Next-fit with a locality hint: asking for a block [~near] the
    file's previous one yields mostly-contiguous files, which is what
    lets the clustering layer build 64 KB transactions. Bitmap blocks
    are modified through the buffer cache as delayed metadata; after a
    crash the bitmap is rebuilt from reachable blocks (fsck-style), so
    it is never synchronously written on the write path — matching the
    paper's count of data + inode + indirect as the per-write disk
    transactions. *)

exception No_space

type t

val create : Buffer_cache.t -> Layout.superblock -> t

val alloc : t -> ?near:int -> unit -> int
(** A free block number, marked allocated. Raises {!No_space}. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] if the block is not currently allocated
    or is below the data area. *)

val is_allocated : t -> int -> bool
val allocated_in_data_area : t -> int

val set_allocated : t -> int -> unit
(** Unconditionally mark a block allocated (mkfs and fsck only). *)

val clear_all_data_area : t -> unit
(** Reset the bitmap for the whole data area (fsck rebuild step 1). *)
