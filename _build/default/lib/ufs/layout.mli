(** On-disk format of the simplified FFS ("UFS") used by the server.

    Everything here is pure byte twiddling: encoding and decoding of
    the superblock, inodes and directory entries, plus the geometry
    arithmetic mapping structures to disk blocks. All multi-byte
    fields are big-endian.

    Layout of a volume with block size [bsize]:
    {v
    block 0                  superblock
    bitmap_start ..          one bit per block, 1 = allocated
    itable_start ..          inode table, 128-byte inodes
    data_start ..            data and indirect blocks
    v} *)

val inode_size : int
(** 128 bytes on disk. *)

val nd_direct : int
(** Number of direct block pointers per inode (12, as in FFS). *)

type ftype = Free | Regular | Directory | Symlink

type superblock = {
  bsize : int;
  nblocks : int;  (** total blocks on the volume *)
  ninodes : int;
  bitmap_start : int;  (** block number *)
  bitmap_blocks : int;
  itable_start : int;
  itable_blocks : int;
  data_start : int;
  root_inum : int;
}

val magic : string

val make_superblock : bsize:int -> capacity:int -> ninodes:int -> superblock
(** Compute a layout for a device of [capacity] bytes. Raises
    [Invalid_argument] if the device is too small. *)

val encode_superblock : superblock -> Bytes.t
(** One [bsize] block. *)

val decode_superblock : Bytes.t -> superblock
(** Raises [Failure] on bad magic or garbage fields. *)

type dinode = {
  ftype : ftype;
  nlink : int;
  size : int;  (** bytes *)
  mtime : int;  (** simulated ns *)
  atime : int;
  ctime : int;
  direct : int array;  (** [nd_direct] block numbers, 0 = hole *)
  single_ind : int;  (** indirect block number, 0 = none *)
  double_ind : int;
  gen : int;
      (** generation number, bumped at every reuse of the inode slot so
          stale NFS file handles can be detected *)
}

val zero_dinode : dinode

val encode_dinode : dinode -> Bytes.t
(** Exactly [inode_size] bytes. *)

val decode_dinode : Bytes.t -> dinode

val inode_block : superblock -> int -> int * int
(** [inode_block sb inum] is [(block number, byte offset within
    block)] of that inode's slot. *)

val pointers_per_block : superblock -> int

val max_file_blocks : superblock -> int
(** Largest file the direct + single + double indirect scheme can map. *)

val get_pointer : Bytes.t -> int -> int
(** [get_pointer block i] reads the [i]-th 32-bit block pointer of an
    indirect block. *)

val set_pointer : Bytes.t -> int -> int -> unit

(** {1 Directory entries}

    A directory's data is a packed sequence of entries, rewritten
    wholesale on modification (directories here are small). *)

val encode_dirents : (string * int) list -> Bytes.t
val decode_dirents : Bytes.t -> (string * int) list

val max_name_len : int
