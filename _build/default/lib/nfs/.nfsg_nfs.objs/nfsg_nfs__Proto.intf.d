lib/nfs/proto.mli: Bytes
