lib/nfs/proto.ml: Bytes Int32 List Nfsg_rpc Printf Xdr
