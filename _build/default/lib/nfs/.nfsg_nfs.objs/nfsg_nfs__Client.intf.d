lib/nfs/client.mli: Bytes Nfsg_rpc Nfsg_sim Proto
