lib/nfs/client.ml: Buffer Bytes Condition Engine List Nfsg_rpc Nfsg_sim Proto Semaphore Stdlib
