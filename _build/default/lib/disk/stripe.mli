(** RAID-0 striping driver over [n] member devices (the paper's
    "3 drive stripe set", provided by a disk striping driver).

    The logical byte space is cut into fixed-size chunks dealt
    round-robin across members. A request spanning several chunks is
    issued to the members in parallel and completes when every
    sub-request has. *)

val create :
  Nfsg_sim.Engine.t -> ?name:string -> chunk:int -> Device.t array -> Device.t
(** [create eng ~chunk members] — capacity is the members' minimum
    capacity times the member count, rounded down to whole chunks.
    Raises [Invalid_argument] on an empty member array or non-positive
    chunk. *)
