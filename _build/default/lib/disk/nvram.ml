open Nfsg_sim

type params = {
  capacity : int;
  accept_limit : int;
  copy_rate : float;
  copy_overhead : Time.t;
  flush_cluster : int;
  flush_trigger : int;
  flush_idle : Time.t;
}

(* Lazy draining is the point of the board: dirty blocks (notably the
   inode block a sequential writer rewrites on every WRITE) sit in
   battery-backed RAM coalescing until the high watermark forces big,
   efficient spindle transactions. *)
let default_params =
  {
    capacity = 1024 * 1024;
    accept_limit = 8 * 1024;
    copy_rate = 50e6;
    copy_overhead = Time.of_us_f 80.0;
    flush_cluster = 128 * 1024;
    flush_trigger = 640 * 1024;
    flush_idle = Time.of_ms_f 200.0;
  }

type state = {
  eng : Engine.t;
  p : params;
  backing : Device.t;
  dirty : Extent_map.t;
  mutable in_flight : (int * Bytes.t) option;
  mutable rotor : int;  (** elevator position for the drain sweep *)
  mutable crashed : bool;
  mutable draining : bool;
  mutable gen : int;  (** flusher generation; bumped on recovery *)
  more : Condition.t;  (** new dirty data *)
  space : Condition.t;  (** NVRAM space freed *)
  clean : Condition.t;  (** cache fully drained *)
}

let used st =
  Extent_map.total_bytes st.dirty
  + match st.in_flight with Some (_, d) -> Bytes.length d | None -> 0

let is_clean st = Extent_map.is_empty st.dirty && st.in_flight = None

(* Boards smaller than the configured watermark still have to drain
   under space pressure. *)
let effective_trigger st = Stdlib.min st.p.flush_trigger (st.p.capacity / 2)

(* Next contiguous dirty run in elevator order, up to flush_cluster
   bytes. Sweeping (instead of always draining the lowest extent)
   keeps a constantly-redirtied inode block from monopolising the
   drain while sequential data piles up behind it. *)
let next_cluster st =
  match Extent_map.take_after st.dirty ~off:st.rotor ~max:st.p.flush_cluster with
  | Some (off, data) as r ->
      st.rotor <- off + Bytes.length data;
      r
  | None -> None

let rec flusher st my_gen () =
  if my_gen = st.gen then begin
    if Extent_map.is_empty st.dirty || st.crashed then begin
      if is_clean st then Condition.broadcast st.clean;
      Condition.wait st.more;
      flusher st my_gen ()
    end
    else if (not st.draining) && Extent_map.total_bytes st.dirty < effective_trigger st then begin
      (* Below the watermark: let dirty data age and coalesce. A new
         write only re-checks the watermark; an undisturbed idle
         period forces an age-out flush. *)
      let signalled = Condition.wait_timeout st.eng st.more st.p.flush_idle in
      if my_gen = st.gen && (not st.crashed) && not signalled then flush_one st;
      flusher st my_gen ()
    end
    else begin
      flush_one st;
      flusher st my_gen ()
    end
  end

and flush_one st =
  match next_cluster st with
  | None -> ()
  | Some (off, data) ->
      st.in_flight <- Some (off, data);
      st.backing.Device.write ~off data;
      st.in_flight <- None;
      if is_clean st then st.draining <- false;
      Condition.broadcast st.space;
      if is_clean st then Condition.broadcast st.clean

let spawn_flusher st =
  Engine.spawn st.eng ~name:"presto-flusher" (flusher st st.gen)

(* Overlay NVRAM contents (in-flight first, then the dirty map so newer
   bytes win) onto a buffer of platter data. *)
let overlay st ~off buf =
  (match st.in_flight with
  | Some (ioff, idata) ->
      let tmp = Extent_map.create () in
      Extent_map.insert tmp ~off:ioff idata;
      Extent_map.apply tmp ~off buf
  | None -> ());
  Extent_map.apply st.dirty ~off buf

(* Weak registry: lets {!dirty_bytes} find the internal state of a
   device without pinning retired simulation worlds (and their 96 MB
   platters) in memory forever. *)
let registry : (Device.t, state) Ephemeron.K1.t list ref = ref []

let dirty_bytes dev =
  let rec find = function
    | [] -> invalid_arg "Nvram.dirty_bytes: not an NVRAM device"
    | e :: rest -> (
        match Ephemeron.K1.query e dev with Some st -> used st | None -> find rest)
  in
  find !registry

let create eng ?(name = "presto") ?(params = default_params) ?(cpu_charge = fun _ -> ())
    backing =
  let st =
    {
      eng;
      p = params;
      backing;
      dirty = Extent_map.create ();
      in_flight = None;
      rotor = 0;
      crashed = false;
      draining = false;
      gen = 0;
      more = Condition.create ();
      space = Condition.create ();
      clean = Condition.create ();
    }
  in
  spawn_flusher st;
  let copy_time len =
    st.p.copy_overhead + Time.of_sec_f (float_of_int len /. st.p.copy_rate)
  in
  (* A powered-off board services nothing: park the caller forever,
     like an unplugged drive. *)
  let check_power () =
    if st.crashed then (Engine.suspend (fun _wake -> ()) : unit)
  in
  let write ~off data =
    check_power ();
    let len = Bytes.length data in
    if len > st.p.accept_limit then
      (* Declined: degrade to underlying device speed (paper 6.3). *)
      st.backing.Device.write ~off data
    else begin
      while used st + len > st.p.capacity do
        Condition.wait st.space
      done;
      let d = copy_time len in
      cpu_charge d;
      Engine.delay d;
      Extent_map.insert st.dirty ~off (Bytes.copy data);
      Condition.signal st.more
    end
  in
  let read ~off ~len =
    check_power ();
    if Extent_map.covers st.dirty ~off ~len then begin
      (* Whole range cached: served from RAM at copy speed. *)
      Engine.delay (copy_time len);
      let buf = Bytes.create len in
      overlay st ~off buf;
      buf
    end
    else begin
      let buf = st.backing.Device.read ~off ~len in
      overlay st ~off buf;
      buf
    end
  in
  let flush () =
    st.draining <- true;
    Condition.signal st.more;
    while not (is_clean st) do
      Condition.wait st.clean
    done;
    st.backing.Device.flush ()
  in
  let crash () =
    st.crashed <- true;
    st.backing.Device.crash ()
  in
  let recover () =
    st.backing.Device.recover ();
    (* Battery-backed replay: in-flight first, then the dirty map so the
       newest bytes win, exactly like the read overlay. *)
    (match st.in_flight with
    | Some (off, data) -> st.backing.Device.stable_write ~off data
    | None -> ());
    Extent_map.iter (fun off data -> st.backing.Device.stable_write ~off data) st.dirty;
    (match st.in_flight with Some _ -> st.in_flight <- None | None -> ());
    Extent_map.remove_range st.dirty ~off:0 ~len:st.backing.Device.capacity;
    st.crashed <- false;
    st.draining <- false;
    st.gen <- st.gen + 1;
    spawn_flusher st;
    Condition.broadcast st.space;
    Condition.broadcast st.clean
  in
  let stable_read ~off ~len =
    let buf = st.backing.Device.stable_read ~off ~len in
    overlay st ~off buf;
    buf
  in
  let dev =
    {
      Device.name;
      capacity = backing.Device.capacity;
      accelerated = true;
      read;
      write;
      flush;
      crash;
      recover;
      spindle_stats = backing.Device.spindle_stats;
      stable_read;
      stable_write = backing.Device.stable_write;
    }
  in
  registry := Ephemeron.K1.make dev st :: !registry;
  dev
