module IntMap = Map.Make (Int)

type t = { mutable extents : Bytes.t IntMap.t (* start offset -> data *) }

let create () = { extents = IntMap.empty }
let is_empty m = IntMap.is_empty m.extents
let total_bytes m = IntMap.fold (fun _ d acc -> acc + Bytes.length d) m.extents 0
let extent_count m = IntMap.cardinal m.extents

let end_of off data = off + Bytes.length data

(* Extents overlapping or touching [off, off+len): those starting before
   the end of the range whose own end reaches at least [off]. *)
let touching m ~off ~len =
  IntMap.fold
    (fun start data acc ->
      if start <= off + len && end_of start data >= off then (start, data) :: acc else acc)
    m.extents []
  |> List.rev

let remove_range m ~off ~len =
  if len > 0 then begin
    let overlapped =
      List.filter (fun (s, d) -> s < off + len && end_of s d > off) (touching m ~off ~len)
    in
    List.iter
      (fun (s, d) ->
        m.extents <- IntMap.remove s m.extents;
        (* Put back any prefix before the removed range. *)
        if s < off then begin
          let keep = Bytes.sub d 0 (off - s) in
          m.extents <- IntMap.add s keep m.extents
        end;
        (* Put back any suffix after the removed range. *)
        let e = end_of s d in
        if e > off + len then begin
          let keep = Bytes.sub d (off + len - s) (e - off - len) in
          m.extents <- IntMap.add (off + len) keep m.extents
        end)
      overlapped
  end

let insert m ~off data =
  let len = Bytes.length data in
  if len > 0 then begin
    (* Collect everything the new extent overlaps or touches, to merge. *)
    let neighbours = touching m ~off ~len in
    let new_start = List.fold_left (fun a (s, _) -> Stdlib.min a s) off neighbours in
    let new_end = List.fold_left (fun a (s, d) -> Stdlib.max a (end_of s d)) (off + len) neighbours in
    let merged = Bytes.create (new_end - new_start) in
    List.iter
      (fun (s, d) ->
        Bytes.blit d 0 merged (s - new_start) (Bytes.length d);
        m.extents <- IntMap.remove s m.extents)
      neighbours;
    (* New data wins over old overlapped bytes. *)
    Bytes.blit data 0 merged (off - new_start) len;
    m.extents <- IntMap.add new_start merged m.extents
  end

let apply m ~off buf =
  let len = Bytes.length buf in
  List.iter
    (fun (s, d) ->
      let copy_start = Stdlib.max s off in
      let copy_end = Stdlib.min (end_of s d) (off + len) in
      if copy_end > copy_start then
        Bytes.blit d (copy_start - s) buf (copy_start - off) (copy_end - copy_start))
    (touching m ~off ~len)

let covers m ~off ~len =
  if len = 0 then true
  else
    (* Because extents are coalesced, full coverage means one extent
       spans the whole range. *)
    IntMap.exists (fun s d -> s <= off && end_of s d >= off + len) m.extents

let take_first m ~max =
  match IntMap.min_binding_opt m.extents with
  | None -> None
  | Some (s, d) ->
      if Bytes.length d <= max then begin
        m.extents <- IntMap.remove s m.extents;
        Some (s, d)
      end
      else begin
        let head = Bytes.sub d 0 max in
        let tail = Bytes.sub d max (Bytes.length d - max) in
        m.extents <- IntMap.remove s m.extents;
        m.extents <- IntMap.add (s + max) tail m.extents;
        Some (s, head)
      end

let take_after m ~off ~max =
  let candidate =
    match IntMap.find_first_opt (fun s -> s >= off) m.extents with
    | Some binding -> Some binding
    | None -> IntMap.min_binding_opt m.extents
  in
  match candidate with
  | None -> None
  | Some (s, d) ->
      if Bytes.length d <= max then begin
        m.extents <- IntMap.remove s m.extents;
        Some (s, d)
      end
      else begin
        let head = Bytes.sub d 0 max in
        let tail = Bytes.sub d max (Bytes.length d - max) in
        m.extents <- IntMap.remove s m.extents;
        m.extents <- IntMap.add (s + max) tail m.extents;
        Some (s, head)
      end

let iter f m = IntMap.iter f m.extents
let fold f m acc = IntMap.fold f m.extents acc
