lib/disk/disk.mli: Device Nfsg_sim
