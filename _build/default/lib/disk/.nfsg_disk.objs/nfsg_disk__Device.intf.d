lib/disk/device.mli: Bytes Nfsg_sim
