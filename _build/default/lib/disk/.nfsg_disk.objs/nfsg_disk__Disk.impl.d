lib/disk/disk.ml: Bytes Condition Device Engine Ivar List Nfsg_sim Printf Stdlib Time
