lib/disk/nvram.mli: Device Nfsg_sim
