lib/disk/device.ml: Bytes Nfsg_sim
