lib/disk/extent_map.mli: Bytes
