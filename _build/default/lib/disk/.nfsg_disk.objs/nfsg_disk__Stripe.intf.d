lib/disk/stripe.mli: Device Nfsg_sim
