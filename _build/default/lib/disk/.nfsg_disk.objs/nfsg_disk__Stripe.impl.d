lib/disk/stripe.ml: Array Bytes Device Engine Ivar List Nfsg_sim Printf Stdlib
