lib/disk/nvram.ml: Bytes Condition Device Engine Ephemeron Extent_map Nfsg_sim Stdlib Time
