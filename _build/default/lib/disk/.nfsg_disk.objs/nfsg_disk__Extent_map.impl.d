lib/disk/extent_map.ml: Bytes Int List Map Stdlib
