(** Byte-extent map: sparse, ordered collection of non-overlapping,
    non-adjacent byte ranges carrying data.

    Used for the NVRAM dirty map (Prestoserve) and anywhere a sparse
    overlay over a flat device is needed. Inserting an extent
    overwrites any overlapped bytes and coalesces with adjacent
    extents, so a sequential stream of 8 KB writes collapses into one
    big extent — which is exactly what makes the flusher's clustering
    work. *)

type t

val create : unit -> t
val is_empty : t -> bool

val total_bytes : t -> int
(** Sum of extent lengths. *)

val extent_count : t -> int

val insert : t -> off:int -> Bytes.t -> unit
(** [insert m ~off data] writes [data] at byte offset [off],
    overwriting overlaps and merging with adjacent extents. The map
    copies [data]; the caller keeps ownership of its buffer. Empty
    [data] is a no-op. *)

val apply : t -> off:int -> Bytes.t -> unit
(** [apply m ~off buf] overlays onto [buf] (representing device bytes
    starting at [off]) every stored byte in range. *)

val covers : t -> off:int -> len:int -> bool
(** Whether every byte of [off, off+len) is present in the map. *)

val take_first : t -> max:int -> (int * Bytes.t) option
(** Remove and return (a prefix of at most [max] bytes of) the
    lowest-offset extent. This is the flusher's unit of clustering:
    one contiguous run per call. *)

val take_after : t -> off:int -> max:int -> (int * Bytes.t) option
(** Like {!take_first} but starts from the first extent at or above
    [off], wrapping to the lowest — an elevator sweep, so a hot extent
    at a low offset cannot monopolise the drain. *)

val remove_range : t -> off:int -> len:int -> unit
(** Delete any stored bytes within the range, trimming partial
    overlaps. *)

val iter : (int -> Bytes.t -> unit) -> t -> unit
(** Iterate extents in offset order. Do not mutate during iteration. *)

val fold : (int -> Bytes.t -> 'a -> 'a) -> t -> 'a -> 'a
