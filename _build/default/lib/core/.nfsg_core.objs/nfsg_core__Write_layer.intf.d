lib/core/write_layer.mli: Bytes Cpu_model Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_stats Nfsg_ufs
