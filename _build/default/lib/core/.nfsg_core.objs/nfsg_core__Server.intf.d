lib/core/server.mli: Cpu_model Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_sim Nfsg_stats Nfsg_ufs Write_layer
