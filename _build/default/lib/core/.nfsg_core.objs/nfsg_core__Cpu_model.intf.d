lib/core/cpu_model.mli: Nfsg_sim
