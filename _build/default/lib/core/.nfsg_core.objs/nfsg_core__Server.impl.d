lib/core/server.ml: Bytes Cpu_model Engine Hashtbl Nfsg_disk Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_stats Nfsg_ufs Option Resource Write_layer
