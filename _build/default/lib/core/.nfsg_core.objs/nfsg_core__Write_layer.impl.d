lib/core/write_layer.ml: Bytes Cpu_model Engine Hashtbl List Nfsg_net Nfsg_nfs Nfsg_rpc Nfsg_sim Nfsg_stats Nfsg_ufs Printf Resource Stdlib Time
