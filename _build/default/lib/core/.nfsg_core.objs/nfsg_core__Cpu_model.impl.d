lib/core/cpu_model.ml: Nfsg_sim Time
