open Nfsg_sim

type t = {
  rx_fragment : Time.t;
  rpc_decode : Time.t;
  rpc_encode : Time.t;
  op_base : Time.t;
  ufs_trip : Time.t;
  driver_transaction : Time.t;
}

let default =
  {
    rx_fragment = Time.of_us_f 70.0;
    rpc_decode = Time.of_us_f 250.0;
    rpc_encode = Time.of_us_f 220.0;
    op_base = Time.of_us_f 180.0;
    ufs_trip = Time.of_us_f 260.0;
    driver_transaction = Time.of_us_f 420.0;
  }

let scale t k =
  let s v = int_of_float (float_of_int v *. k) in
  {
    rx_fragment = s t.rx_fragment;
    rpc_decode = s t.rpc_decode;
    rpc_encode = s t.rpc_encode;
    op_base = s t.op_base;
    ufs_trip = s t.ufs_trip;
    driver_transaction = s t.driver_transaction;
  }
