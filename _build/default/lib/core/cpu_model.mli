(** Server CPU cost model.

    The paper's CPU story — "it takes a lot of CPU cycles to run the
    disk driver and field device interrupts and/or copy data to NVRAM"
    — is expressed as per-event costs charged against a CPU
    {!Nfsg_sim.Resource}. Request-path costs ({!rpc_decode},
    {!op_base}, {!ufs_trip}, {!rpc_encode}) occupy the CPU; interrupt-
    style costs ({!rx_fragment}, {!driver_transaction}) are charged as
    busy-time accounting. Absolute values are calibrated to a DEC
    3400-class server (see DESIGN.md); their ratios, not their
    absolute values, carry the paper's conclusions. *)

type t = {
  rx_fragment : Nfsg_sim.Time.t;
      (** packet reassembly, per incoming transport unit *)
  rpc_decode : Nfsg_sim.Time.t;  (** RPC + XDR decode per request *)
  rpc_encode : Nfsg_sim.Time.t;  (** reply encode + transmit path *)
  op_base : Nfsg_sim.Time.t;  (** NFS action-routine overhead *)
  ufs_trip : Nfsg_sim.Time.t;  (** per VOP call into the filesystem *)
  driver_transaction : Nfsg_sim.Time.t;
      (** disk driver work + interrupt service, per spindle transaction *)
}

val default : t
val scale : t -> float -> t
(** Uniformly faster/slower CPU. *)
