(* nfslint — the repo's determinism & crash-semantics lint.

     nfslint [--list-rules] [--strict] [-q] [PATH...]

   Lints every .ml under the given paths (default: lib) and exits
   non-zero if any unsuppressed error remains; with --strict,
   warnings (unused suppressions) fail too. Run it through dune:

     dune build @lint *)

module Diagnostic = Nfsg_lint.Diagnostic
module Rules = Nfsg_lint.Rules
module Lint = Nfsg_lint.Lint

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--list-rules" args then begin
    List.iter (fun (r : Rules.rule) -> Printf.printf "%s  %s\n" r.id r.synopsis) Rules.all;
    exit 0
  end;
  let quiet = List.mem "-q" args in
  let strict = List.mem "--strict" args in
  let paths =
    match List.filter (fun a -> a = "" || a.[0] <> '-') args with [] -> [ "lib" ] | ps -> ps
  in
  let files = List.concat_map ml_files paths in
  let diags = List.concat_map (fun f -> Lint.lint_file f) files in
  List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let warnings = List.length diags - errors in
  if not quiet then
    Printf.printf "nfslint: %d file(s), %d error(s), %d warning(s)\n" (List.length files) errors
      warnings;
  exit (if errors > 0 || (strict && warnings > 0) then 1 else 0)
