(* nfsgather: regenerate any table or figure of Juszczak (USENIX 1994)
   from the simulated NFS stack. *)

open Cmdliner
module E = Nfsg_experiments.Experiments

let print_report r = print_string (Nfsg_stats.Report.to_string r)

let quick_arg =
  let doc = "Run with a smaller file / shorter measurement (fast smoke mode)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let run_experiment quick = function
  | "table1" -> print_report (E.table1 ~quick ())
  | "table2" -> print_report (E.table2 ~quick ())
  | "table3" -> print_report (E.table3 ~quick ())
  | "table4" -> print_report (E.table4 ~quick ())
  | "table5" -> print_report (E.table5 ~quick ())
  | "table6" -> print_report (E.table6 ~quick ())
  | "figure1" -> print_string (E.figure1 ())
  | "figure2" ->
      print_string
        (E.render_laddis ~title:"Figure 2. SPEC SFS 1.0-style baseline (FDDI)" (E.figure2 ~quick ()))
  | "figure3" ->
      print_string
        (E.render_laddis ~title:"Figure 3. SPEC SFS 1.0-style baseline (FDDI, Prestoserve)"
           (E.figure3 ~quick ()))
  | "ablations" ->
      print_report (E.ablation_procrastination ~quick ());
      print_newline ();
      print_report (E.ablation_reply_order ~quick ());
      print_newline ();
      print_report (E.ablation_latency_device ~quick ());
      print_newline ();
      print_report (E.ablation_mbuf_hunter ~quick ());
      print_newline ();
      print_report (E.ablation_dumb_pc ~quick ());
      print_newline ();
      print_report (E.ablation_disk_scheduler ~quick ())
  | "extensions" ->
      print_report (E.extension_learned_clients ~quick ());
      print_newline ();
      print_report (E.extension_v3 ~quick ());
      print_newline ();
      print_report (E.extension_write_modes ~quick ())
  | "chaos" ->
      let module Chaos = Nfsg_experiments.Chaos in
      let cfg =
        if quick then { Chaos.default with Chaos.cycles = 2; blocks_per_writer = 60 }
        else Chaos.default
      in
      let r = Chaos.run cfg in
      Fmt.pr "%a@." Chaos.pp_result r;
      List.iter print_endline r.Chaos.timeline
  | other -> Printf.eprintf "unknown experiment %S\n" other

let names =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1"; "figure2"; "figure3";
    "ablations"; "extensions"; "chaos";
  ]

let run quick targets =
  let targets = if targets = [] || List.mem "all" targets then names else targets in
  List.iteri
    (fun i name ->
      if i > 0 then print_newline ();
      run_experiment quick name)
    targets

let targets_arg =
  let doc =
    "Experiments to run: table1..table6, figure1..figure3, ablations, extensions, chaos, or all \
     (default)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "reproduce 'Improving the Write Performance of an NFS Server' (USENIX 1994)" in
  let info = Cmd.info "nfsgather" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run $ quick_arg $ targets_arg)

let () = exit (Cmd.eval cmd)
