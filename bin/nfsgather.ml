(* nfsgather: regenerate any table or figure of Juszczak (USENIX 1994)
   from the simulated NFS stack. *)

open Cmdliner
module E = Nfsg_experiments.Experiments
module Metrics = Nfsg_stats.Metrics

let print_report r = print_string (Nfsg_stats.Report.to_string r)

let quick_arg =
  let doc = "Run with a smaller file / shorter measurement (fast smoke mode)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let scheduler_arg =
  let policy =
    Arg.enum
      [
        ("fifo", Nfsg_disk.Disk.Fifo);
        ("elevator", Nfsg_disk.Disk.Elevator);
        ("deadline", Nfsg_disk.Disk.Deadline);
      ]
  in
  let doc =
    "Force every simulated spindle onto the given I/O scheduling policy ($(docv) is one of \
     fifo, elevator or deadline), overriding each experiment's own choice."
  in
  Arg.(value & opt (some policy) None & info [ "scheduler" ] ~docv:"POLICY" ~doc)

let raid_level_arg =
  let level =
    Arg.enum
      [
        ("raid0", Nfsg_disk.Stripe.Raid0);
        ("raid1", Nfsg_disk.Stripe.Raid1);
        ("raid5", Nfsg_disk.Stripe.Raid5);
      ]
  in
  let doc =
    "Serve every multi-spindle experiment from a redundant array at the given RAID level \
     ($(docv) is one of raid0, raid1 or raid5) instead of the plain stripe set; the chaos rig \
     additionally fail-stops and rebuilds one member per fault cycle."
  in
  Arg.(value & opt (some level) None & info [ "raid-level" ] ~docv:"LEVEL" ~doc)

let metrics_json_arg =
  let doc =
    "Write the typed-metrics registry of the run (every counter, gauge and histogram \
     registered by every simulated world the selected experiments build) to $(docv) as \
     deterministic JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let run_experiment ?metrics ?raid_level quick = function
  | "table1" -> print_report (E.table1 ~quick ())
  | "table2" -> print_report (E.table2 ~quick ())
  | "table3" -> print_report (E.table3 ~quick ())
  | "table4" -> print_report (E.table4 ~quick ())
  | "table5" -> print_report (E.table5 ~quick ())
  | "table6" -> print_report (E.table6 ~quick ())
  | "figure1" -> print_string (E.figure1 ())
  | "figure2" ->
      print_string
        (E.render_laddis ~title:"Figure 2. SPEC SFS 1.0-style baseline (FDDI)" (E.figure2 ~quick ()))
  | "figure3" ->
      print_string
        (E.render_laddis ~title:"Figure 3. SPEC SFS 1.0-style baseline (FDDI, Prestoserve)"
           (E.figure3 ~quick ()))
  | "ablations" ->
      print_report (E.ablation_procrastination ~quick ());
      print_newline ();
      print_report (E.ablation_reply_order ~quick ());
      print_newline ();
      print_report (E.ablation_latency_device ~quick ());
      print_newline ();
      print_report (E.ablation_mbuf_hunter ~quick ());
      print_newline ();
      print_report (E.ablation_dumb_pc ~quick ());
      print_newline ();
      print_report (E.ablation_disk_scheduler ~quick ())
  | "extensions" ->
      print_report (E.extension_learned_clients ~quick ());
      print_newline ();
      print_report (E.extension_v3 ~quick ());
      print_newline ();
      print_report (E.extension_write_modes ~quick ())
  | "writegather" ->
      print_string (Nfsg_stats.Json.to_string ~pretty:true (E.bench_writegather ~quick ()))
  | "multivolume" -> print_report (Nfsg_experiments.Multivolume.report ~quick ())
  | "raid" -> print_report (Nfsg_experiments.Raid.report ~quick ())
  | "chaos" ->
      let module Chaos = Nfsg_experiments.Chaos in
      let cfg =
        if quick then { Chaos.default with Chaos.cycles = 2; blocks_per_writer = 60 }
        else Chaos.default
      in
      let cfg = { cfg with Chaos.array_level = raid_level } in
      let r = Chaos.run ?metrics cfg in
      Fmt.pr "%a@." Chaos.pp_result r;
      List.iter print_endline r.Chaos.timeline
  | other -> Printf.eprintf "unknown experiment %S\n" other

let names =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1"; "figure2"; "figure3";
    "ablations"; "extensions"; "writegather"; "multivolume"; "raid"; "chaos";
  ]

let run quick scheduler raid_level metrics_json targets =
  let targets = if targets = [] || List.mem "all" targets then names else targets in
  let metrics = Option.map (fun _ -> Metrics.create ()) metrics_json in
  (* Rig-built worlds report into the shared sink; chaos (which builds
     its own world) takes the registry as a parameter. *)
  Nfsg_experiments.Rig.set_metrics_sink metrics;
  Nfsg_experiments.Rig.set_scheduler_override scheduler;
  Nfsg_experiments.Rig.set_raid_level_override raid_level;
  List.iteri
    (fun i name ->
      if i > 0 then print_newline ();
      run_experiment ?metrics ?raid_level quick name)
    targets;
  Nfsg_experiments.Rig.set_raid_level_override None;
  Nfsg_experiments.Rig.set_scheduler_override None;
  Nfsg_experiments.Rig.set_metrics_sink None;
  match (metrics_json, metrics) with
  | Some file, Some m ->
      let oc = open_out file in
      output_string oc (Metrics.to_string ~pretty:true m);
      close_out oc;
      Printf.eprintf "metrics written to %s\n%!" file
  | _ -> ()

let targets_arg =
  let doc =
    "Experiments to run: table1..table6, figure1..figure3, ablations, extensions, writegather, \
     multivolume, raid, chaos, or all (default)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "reproduce 'Improving the Write Performance of an NFS Server' (USENIX 1994)" in
  let info = Cmd.info "nfsgather" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run $ quick_arg $ scheduler_arg $ raid_level_arg $ metrics_json_arg $ targets_arg)

let () = exit (Cmd.eval cmd)
