(* nfsgather: regenerate any table or figure of Juszczak (USENIX 1994)
   from the simulated NFS stack. *)

open Cmdliner
module E = Nfsg_experiments.Experiments
module Metrics = Nfsg_stats.Metrics

let print_report r = print_string (Nfsg_stats.Report.to_string r)

let quick_arg =
  let doc = "Run with a smaller file / shorter measurement (fast smoke mode)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let scheduler_arg =
  let policy =
    Arg.enum
      [
        ("fifo", Nfsg_disk.Disk.Fifo);
        ("elevator", Nfsg_disk.Disk.Elevator);
        ("deadline", Nfsg_disk.Disk.Deadline);
      ]
  in
  let doc =
    "Force every simulated spindle onto the given I/O scheduling policy ($(docv) is one of \
     fifo, elevator or deadline), overriding each experiment's own choice."
  in
  Arg.(value & opt (some policy) None & info [ "scheduler" ] ~docv:"POLICY" ~doc)

let raid_level_arg =
  let level =
    Arg.enum
      [
        ("raid0", Nfsg_disk.Stripe.Raid0);
        ("raid1", Nfsg_disk.Stripe.Raid1);
        ("raid5", Nfsg_disk.Stripe.Raid5);
      ]
  in
  let doc =
    "Serve every multi-spindle experiment from a redundant array at the given RAID level \
     ($(docv) is one of raid0, raid1 or raid5) instead of the plain stripe set; the chaos rig \
     additionally fail-stops and rebuilds one member per fault cycle."
  in
  Arg.(value & opt (some level) None & info [ "raid-level" ] ~docv:"LEVEL" ~doc)

let monitor_interval_arg =
  let doc =
    "Drive an nfsmon top-like reporter over every simulated world the selected experiments \
     build, printing per-client-station activity every $(docv) milliseconds of simulated time."
  in
  Arg.(value & opt (some float) None & info [ "monitor-interval" ] ~docv:"MS" ~doc)

let long_op_threshold_arg =
  let doc =
    "Arm long-op journey tracing in every simulated server: ops slower end-to-end than $(docv) \
     milliseconds leave a full per-phase journey record, dumped after each experiment."
  in
  Arg.(value & opt (some float) None & info [ "long-op-threshold" ] ~docv:"MS" ~doc)

let sweep_points_arg =
  let doc =
    "Cap the laddis-curve offered-load ladder at $(docv) rungs per configuration, overriding \
     the sweep's own ceiling."
  in
  Arg.(value & opt (some int) None & info [ "sweep-points" ] ~docv:"N" ~doc)

let procs_max_arg =
  let doc =
    "Cap the laddis-curve load-generator pool at $(docv) processes, overriding the sweep's \
     own ceiling."
  in
  Arg.(value & opt (some int) None & info [ "procs-max" ] ~docv:"N" ~doc)

let curve_configs_arg =
  let doc =
    "Restrict the laddis-curve sweep to the named grid configurations (comma-separated; \
     baseline, deadline, gather, nvram, gather+stripe3)."
  in
  Arg.(
    value
    & opt (some (list ~sep:',' string)) None
    & info [ "curve-configs" ] ~docv:"CONFIGS" ~doc)

let clients_max_arg =
  let doc =
    "Cap the bootstorm fleet ladder at $(docv) diskless clients, overriding the sweep's own \
     ceiling."
  in
  Arg.(value & opt (some int) None & info [ "clients-max" ] ~docv:"N" ~doc)

let readahead_arg =
  let side = Arg.enum [ ("on", true); ("off", false) ] in
  let doc =
    "Restrict the bootstorm comparison to one side ($(docv) is on or off) instead of running \
     both the read-ahead and no-read-ahead configurations."
  in
  Arg.(value & opt (some side) None & info [ "readahead" ] ~docv:"SIDE" ~doc)

let metrics_json_arg =
  let doc =
    "Write the typed-metrics registry of the run (every counter, gauge and histogram \
     registered by every simulated world the selected experiments build) to $(docv) as \
     deterministic JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let run_experiment ?metrics ?raid_level quick = function
  | "table1" -> print_report (E.table1 ~quick ())
  | "table2" -> print_report (E.table2 ~quick ())
  | "table3" -> print_report (E.table3 ~quick ())
  | "table4" -> print_report (E.table4 ~quick ())
  | "table5" -> print_report (E.table5 ~quick ())
  | "table6" -> print_report (E.table6 ~quick ())
  | "figure1" -> print_string (E.figure1 ())
  | "figure2" ->
      print_string
        (E.render_laddis ~title:"Figure 2. SPEC SFS 1.0-style baseline (FDDI)" (E.figure2 ~quick ()))
  | "figure3" ->
      print_string
        (E.render_laddis ~title:"Figure 3. SPEC SFS 1.0-style baseline (FDDI, Prestoserve)"
           (E.figure3 ~quick ()))
  | "ablations" ->
      print_report (E.ablation_procrastination ~quick ());
      print_newline ();
      print_report (E.ablation_reply_order ~quick ());
      print_newline ();
      print_report (E.ablation_latency_device ~quick ());
      print_newline ();
      print_report (E.ablation_mbuf_hunter ~quick ());
      print_newline ();
      print_report (E.ablation_dumb_pc ~quick ());
      print_newline ();
      print_report (E.ablation_disk_scheduler ~quick ())
  | "extensions" ->
      print_report (E.extension_learned_clients ~quick ());
      print_newline ();
      print_report (E.extension_v3 ~quick ());
      print_newline ();
      print_report (E.extension_write_modes ~quick ())
  | "writegather" ->
      print_string (Nfsg_stats.Json.to_string ~pretty:true (E.bench_writegather ~quick ()))
  | "multivolume" -> print_report (Nfsg_experiments.Multivolume.report ~quick ())
  | "laddis-curve" ->
      let module Lc = Nfsg_experiments.Laddis_curve in
      (* Quick mode shortens the ladder (unless --sweep-points already
         did) rather than shrinking the workload: the rungs that do run
         stay comparable with the committed artifact. *)
      let sweep =
        if quick then { Lc.default_sweep with Lc.max_points = 3 } else Lc.default_sweep
      in
      print_report (Lc.report ~sweep ())
  | "bootstorm" ->
      let module Bs = Nfsg_experiments.Bootstorm in
      (* Quick mode shortens the fleet ladder (unless --clients-max
         already did): the rungs that do run stay comparable with the
         committed artifact. *)
      let sweep =
        if quick then { Bs.default_sweep with Bs.clients_max = 4 } else Bs.default_sweep
      in
      print_report (Bs.report ~sweep ())
  | "iosched-probe" ->
      (* The tail investigation behind the deadline-p99 fix: rerun the
         bench world with journey tracing armed and dump the evidence
         for the two ends of the comparison. *)
      print_string (Nfsg_experiments.Iosched.investigate "deadline+merge");
      print_newline ();
      print_string (Nfsg_experiments.Iosched.investigate "fifo")
  | "raid" -> print_report (Nfsg_experiments.Raid.report ~quick ())
  | "chaos" ->
      let module Chaos = Nfsg_experiments.Chaos in
      let cfg =
        if quick then { Chaos.default with Chaos.cycles = 2; blocks_per_writer = 60 }
        else Chaos.default
      in
      let cfg = { cfg with Chaos.array_level = raid_level } in
      let r = Chaos.run ?metrics cfg in
      Fmt.pr "%a@." Chaos.pp_result r;
      List.iter print_endline r.Chaos.timeline
  | other -> Printf.eprintf "unknown experiment %S\n" other

let names =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "figure1"; "figure2"; "figure3";
    "ablations"; "extensions"; "writegather"; "multivolume"; "laddis-curve"; "bootstorm"; "raid";
    "chaos";
  ]
(* iosched-probe is runnable by name but not part of "all": it reruns
   the saturating bench world twice and exists for investigations, not
   for the paper-reproduction sweep. *)

let run quick scheduler raid_level sweep_points procs_max curve_configs clients_max readahead
    monitor_interval long_op_threshold metrics_json targets =
  let targets = if targets = [] || List.mem "all" targets then names else targets in
  let metrics = Option.map (fun _ -> Metrics.create ()) metrics_json in
  (* Rig-built worlds report into the shared sink; chaos (which builds
     its own world) takes the registry as a parameter. *)
  Nfsg_experiments.Rig.set_metrics_sink metrics;
  Nfsg_experiments.Rig.set_scheduler_override scheduler;
  Nfsg_experiments.Rig.set_raid_level_override raid_level;
  Nfsg_experiments.Laddis_curve.set_sweep_points_override sweep_points;
  Nfsg_experiments.Laddis_curve.set_procs_max_override procs_max;
  Nfsg_experiments.Laddis_curve.set_grid_override curve_configs;
  Nfsg_experiments.Bootstorm.set_clients_max_override clients_max;
  Nfsg_experiments.Bootstorm.set_readahead_override readahead;
  Nfsg_experiments.Rig.set_monitor_interval
    (Option.map Nfsg_sim.Time.of_ms_f monitor_interval);
  Nfsg_experiments.Rig.set_long_op_threshold
    (Option.map Nfsg_sim.Time.of_ms_f long_op_threshold);
  if monitor_interval <> None || long_op_threshold <> None then
    Nfsg_experiments.Rig.set_monitor_emit (Some print_string);
  List.iteri
    (fun i name ->
      if i > 0 then print_newline ();
      run_experiment ?metrics ?raid_level quick name)
    targets;
  Nfsg_experiments.Rig.set_monitor_emit None;
  Nfsg_experiments.Rig.set_long_op_threshold None;
  Nfsg_experiments.Rig.set_monitor_interval None;
  Nfsg_experiments.Bootstorm.set_readahead_override None;
  Nfsg_experiments.Bootstorm.set_clients_max_override None;
  Nfsg_experiments.Laddis_curve.set_grid_override None;
  Nfsg_experiments.Laddis_curve.set_procs_max_override None;
  Nfsg_experiments.Laddis_curve.set_sweep_points_override None;
  Nfsg_experiments.Rig.set_raid_level_override None;
  Nfsg_experiments.Rig.set_scheduler_override None;
  Nfsg_experiments.Rig.set_metrics_sink None;
  match (metrics_json, metrics) with
  | Some file, Some m ->
      let oc = open_out file in
      output_string oc (Metrics.to_string ~pretty:true m);
      close_out oc;
      Printf.eprintf "metrics written to %s\n%!" file
  | _ -> ()

let targets_arg =
  let doc =
    "Experiments to run: table1..table6, figure1..figure3, ablations, extensions, writegather, \
     multivolume, laddis-curve, bootstorm, raid, chaos, iosched-probe, or all (default; \
     excludes iosched-probe)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "reproduce 'Improving the Write Performance of an NFS Server' (USENIX 1994)" in
  let info = Cmd.info "nfsgather" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ quick_arg $ scheduler_arg $ raid_level_arg $ sweep_points_arg $ procs_max_arg
      $ curve_configs_arg $ clients_max_arg $ readahead_arg $ monitor_interval_arg
      $ long_op_threshold_arg $ metrics_json_arg $ targets_arg)

let () = exit (Cmd.eval cmd)
