(* nfsrace — yield-point-aware concurrency analysis for the
   cooperative simulator.

     nfsrace [--list-rules] [--strict] [-q] [PATH...]

   Builds a call graph over every .ml under the given paths (default:
   lib), infers which functions may yield to the scheduler, and checks
   the lock discipline around those yield points. Exits non-zero if
   any unsuppressed error remains; with --strict, warnings (unused
   suppressions, unattached annotations) fail too. Run it through
   dune:

     dune build @race *)

module Diagnostic = Nfsg_lint.Diagnostic
module Race = Nfsg_race.Race

let rules =
  [
    ("Y001", "may-yield call while a sleep lock is held (lock convoy across an open-ended wait)");
    ("Y002", "read-modify-write of top-level mutable state spans a may-yield call with no lock");
    ("Y003", "lock acquired but not released on every return and exception path");
  ]

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--list-rules" args then begin
    List.iter (fun (id, synopsis) -> Printf.printf "%s  %s\n" id synopsis) rules;
    exit 0
  end;
  let quiet = List.mem "-q" args in
  let strict = List.mem "--strict" args in
  let paths =
    match List.filter (fun a -> a = "" || a.[0] <> '-') args with [] -> [ "lib" ] | ps -> ps
  in
  let files = List.concat_map ml_files paths in
  let diags = Race.analyze_files (List.map (fun f -> (f, f)) files) in
  List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let warnings = List.length diags - errors in
  if not quiet then
    Printf.printf "nfsrace: %d file(s), %d error(s), %d warning(s)\n" (List.length files) errors
      warnings;
  exit (if errors > 0 || (strict && warnings > 0) then 1 else 0)
