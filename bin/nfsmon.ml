(* nfsmon: demonstrate the live operability plane on a canned
   deterministic world — interval reports with per-station attribution,
   the journey phase summary, and the long-op records a mid-run disk
   slowdown leaves behind. CI byte-diffs this output against NFSMON.txt.

   To watch a real experiment instead, use
   `nfsgather --monitor-interval MS <experiment>`. *)

open Cmdliner
module Demo = Nfsg_experiments.Monitor_demo
module Time = Nfsg_sim.Time

let interval_arg =
  let doc = "Reporting interval in milliseconds of simulated time." in
  Arg.(value & opt float 200.0 & info [ "i"; "interval" ] ~docv:"MS" ~doc)

let threshold_arg =
  let doc =
    "Long-op threshold in milliseconds: ops slower end-to-end than this leave a journey \
     record in the long-op ring."
  in
  Arg.(value & opt float 60.0 & info [ "t"; "threshold" ] ~docv:"MS" ~doc)

let run interval threshold =
  let cfg =
    {
      Demo.default with
      Demo.interval = Time.of_ms_f interval;
      threshold = Time.of_ms_f threshold;
    }
  in
  print_string (Demo.run ~cfg ())

let cmd =
  let doc = "top-like live monitoring of the simulated NFS server (canned demo world)" in
  let info = Cmd.info "nfsmon" ~version:"1.0.0" ~doc in
  Cmd.v info Term.(const run $ interval_arg $ threshold_arg)

let () = exit (Cmd.eval cmd)
