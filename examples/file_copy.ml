(* The paper's Results experiment, self-served: copy a file over a
   chosen network with and without write gathering, sweeping biods.

   Run with:  dune exec examples/file_copy.exe -- [ethernet|fddi] [mb]
   (defaults: ethernet, 4 MB) *)

open Nfsg_experiments
module Report = Nfsg_stats.Report

let () =
  let net =
    match if Array.length Sys.argv > 1 then Sys.argv.(1) else "ethernet" with
    | "fddi" -> Calib.Fddi
    | _ -> Calib.Ethernet
  in
  let mb = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let total = mb * 1024 * 1024 in
  let biods = [ 0; 3; 7; 15 ] in
  let name = match net with Calib.Ethernet -> "Ethernet" | Calib.Fddi -> "FDDI" in
  Printf.printf "Copying a %d MB file over simulated %s, biods in %s...\n\n" mb name
    (String.concat "/" (List.map string_of_int biods));
  let report =
    Filecopy.table
      ~title:(Printf.sprintf "%d MB file copy: %s" mb name)
      ~net ~accel:false ~spindles:1 ~biods ~total ()
  in
  print_string (Report.to_string report);
  print_newline ();
  print_endline "Compare the two sections: gathering multiplies client write speed";
  print_endline "once biods give the server something to gather, and cuts disk";
  print_endline "transactions per second while moving *more* data.";
  ()
